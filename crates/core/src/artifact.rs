//! Persistent model artifacts (DESIGN.md §6.10): a versioned, checksummed
//! binary container for the *whole* fitted [`LevaModel`], so the expensive
//! embedding construction is paid once and serving loads the result.
//!
//! Container layout (little-endian throughout):
//!
//! ```text
//! magic "LEVA" | u32 version | u32 chunk_count
//! v1/v2 chunk: [u8; 4] tag | u64 payload_len | u32 crc32 | payload
//! v3 chunk:    [u8; 4] tag | u64 payload_len | u32 crc32 | u32 pad_len
//!              | pad_len zero bytes | payload
//! ```
//!
//! At v3 `pad_len` is exactly the padding that brings the payload's
//! *absolute file offset* to a multiple of 8, so the `STOR` dense matrix
//! and the `GRPH` CSR arrays are naturally aligned when the artifact is
//! memory-mapped ([`LevaModel::load_mmap`]) — decoders reject any other
//! pad length or non-zero pad byte. Chunks, in writing order (decoding
//! accepts any order but requires each exactly once):
//!
//! | tag    | payload                                                    |
//! |--------|------------------------------------------------------------|
//! | `SYMB` | interner symbol table (token text in dense-id order)       |
//! | `CONF` | the full [`LevaConfig`]                                    |
//! | `TOKD` | tokenized database: attributes, encoders, row streams      |
//! | `GRPH` | graph adjacency + weights, row offsets (aligned CSR at v3) |
//! | `STOR` | dense embedding store (f64; aligned dense matrix at v3)    |
//! | `DISC` | discovered relationships + injection counters (v2+)        |
//! | `META` | base table, method, memory estimate, timings, ingest audit |
//! | `DELT` | one appended-rows delta record (v3+, repeatable, ordered)  |
//!
//! Version history: v1 had no `DISC` chunk and no discovery fields in
//! `CONF`; v1 artifacts still load, with an empty discovery set and the
//! default (disabled) discovery configuration. v2 artifacts require `DISC`.
//! v3 adds the aligned chunk framing, the aligned `STOR`/`GRPH` payload
//! layouts, and the `CONF` precision field; v1/v2 artifacts keep decoding
//! through the original heap codecs. v3 also admits zero or more trailing
//! `DELT` chunks (DESIGN.md §6.16): each is one [`DeltaRecord`] of rows
//! appended after the base model was fitted. Saving a model with pending
//! deltas re-emits the captured *base* snapshot unchanged and appends one
//! `DELT` frame per record, so versioned artifacts form a chain; loading
//! decodes the base, then replays every delta in writing order through the
//! same append path (`LevaModel::append_rows`). A v3 artifact with no
//! deltas is byte-identical to one written before this chunk existed.
//!
//! Decoding is strictly bounded: every declared length is validated against
//! the remaining buffer *before* any allocation, all length arithmetic is
//! checked, and every failure is a typed [`ArtifactError`] — hostile bytes
//! can never panic the process or allocate beyond the input size. Payload
//! corruption that still parses is caught by the per-chunk CRC-32.
//! [`LevaModel::from_bytes`] verifies every CRC eagerly;
//! [`LevaModel::load_mmap`] defers the (large) `STOR` CRC to first
//! featurization so load time is O(1) in the embedding size (DESIGN.md
//! §6.14).

use crate::config::{EmbeddingMethod, Featurization, LevaConfig};
use crate::delta::DeltaRecord;
use crate::memory::MemoryEstimate;
use crate::pipeline::{LevaModel, MethodUsed};
use crate::timing::StageTimings;
use leva_discovery::{DiscoveredRelationship, DiscoveryConfig};
use leva_embedding::{EmbeddingStore, Precision};
use leva_graph::{LevaGraph, RelationshipInjection};
use leva_interner::codec::{crc32, ByteReader, ByteWriter, DecodeError};
use leva_interner::{MmapFile, TokenInterner};
use leva_relational::{CellIssue, IngestReport, IssueReason};
use leva_textify::{HistogramChoice, TokenizedDatabase};
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const MAGIC: &[u8; 4] = b"LEVA";
const ARTIFACT_VERSION: u32 = 3;
/// Oldest artifact version [`LevaModel::from_bytes`] still accepts.
const MIN_ARTIFACT_VERSION: u32 = 1;
/// First version with aligned chunk framing and mmap-able payloads.
const ALIGNED_VERSION: u32 = 3;

const TAG_SYMB: [u8; 4] = *b"SYMB";
const TAG_CONF: [u8; 4] = *b"CONF";
const TAG_TOKD: [u8; 4] = *b"TOKD";
const TAG_GRPH: [u8; 4] = *b"GRPH";
const TAG_STOR: [u8; 4] = *b"STOR";
const TAG_DISC: [u8; 4] = *b"DISC";
const TAG_META: [u8; 4] = *b"META";
const TAG_DELT: [u8; 4] = *b"DELT";

/// Errors produced while reading or writing a model artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The buffer does not start with the artifact magic bytes.
    BadMagic,
    /// The artifact was written by an unsupported format version.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// A chunk payload's CRC-32 does not match its header.
    ChecksumMismatch {
        /// Tag of the corrupt chunk.
        chunk: String,
    },
    /// A chunk appeared twice, or an unknown tag was encountered.
    BadChunk {
        /// Tag of the offending chunk.
        chunk: String,
    },
    /// A v3 chunk's payload is not 8-byte aligned: the declared pad length
    /// is not the canonical alignment padding, or a pad byte is non-zero.
    Misaligned {
        /// Tag of the misaligned chunk.
        chunk: String,
    },
    /// A required chunk is absent.
    MissingChunk(&'static str),
    /// Bytes remain after the declared chunks (or within a chunk after its
    /// declared content).
    TrailingData,
    /// A chunk payload failed bounded decoding.
    Decode {
        /// Tag of the chunk that failed.
        chunk: &'static str,
        /// The underlying decode failure.
        source: DecodeError,
    },
    /// Every chunk decoded, but the chunks contradict each other (e.g. the
    /// tokenized database claims more rows than the graph has row nodes).
    /// A model assembled from such chunks would misbehave at featurization
    /// time, so the artifact is rejected at load.
    Inconsistent {
        /// What disagreed.
        reason: &'static str,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "artifact I/O error: {e}"),
            Self::BadMagic => write!(f, "not a Leva model artifact (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported artifact version {v}"),
            Self::Truncated => write!(f, "artifact truncated"),
            Self::ChecksumMismatch { chunk } => {
                write!(f, "chunk {chunk:?} failed its CRC-32 check")
            }
            Self::BadChunk { chunk } => write!(f, "duplicate or unknown chunk {chunk:?}"),
            Self::Misaligned { chunk } => {
                write!(f, "chunk {chunk:?} payload is not 8-byte aligned")
            }
            Self::MissingChunk(tag) => write!(f, "required chunk {tag:?} is missing"),
            Self::TrailingData => write!(f, "artifact has trailing bytes"),
            Self::Decode { chunk, source } => {
                write!(f, "chunk {chunk:?} failed to decode: {source}")
            }
            Self::Inconsistent { reason } => {
                write!(f, "artifact chunks are mutually inconsistent: {reason}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Maps a chunk's [`DecodeError`] into a tagged [`ArtifactError`].
fn in_chunk(chunk: &'static str) -> impl Fn(DecodeError) -> ArtifactError {
    move |source| ArtifactError::Decode { chunk, source }
}

/// A chunk decoder must consume its payload exactly.
fn finish_chunk(r: &ByteReader<'_>, chunk: &'static str) -> Result<(), ArtifactError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(ArtifactError::Decode {
            chunk,
            source: DecodeError::Invalid("trailing bytes in chunk"),
        })
    }
}

impl LevaModel {
    /// Serializes the whole fitted model into the chunked artifact format.
    ///
    /// Implemented on top of [`LevaModel::save_to`] (collecting into a
    /// `Vec`), so the buffered and streaming paths are byte-identical by
    /// construction.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_version(ARTIFACT_VERSION)
    }

    /// Serializes at an explicit format version. Version 1 omits the `DISC`
    /// chunk and the discovery fields of `CONF`; versions below 3 use the
    /// unaligned chunk framing and heap payload layouts — kept
    /// (crate-private) so tests can fabricate genuine legacy artifacts.
    pub(crate) fn to_bytes_with_version(&self, version: u32) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_artifact(version, &mut out)
            .expect("writing to a Vec cannot fail");
        out
    }

    /// Streams the model artifact into `out` one chunk at a time: each
    /// chunk payload is encoded into its own buffer, framed, written, and
    /// dropped before the next is built, so peak memory is the artifact
    /// header plus the *largest single chunk* rather than the whole
    /// artifact — [`LevaModel::save`] used to double-buffer the full byte
    /// image on top of the model itself (2× peak RSS).
    pub fn save_to(&self, out: impl Write) -> Result<(), ArtifactError> {
        Ok(self.write_artifact(ARTIFACT_VERSION, out)?)
    }

    fn write_artifact(&self, version: u32, mut out: impl Write) -> std::io::Result<()> {
        // A model with pending deltas saves as a *chain*: the base snapshot
        // captured at the first append, byte-for-byte, with the header chunk
        // count patched up and one CRC'd `DELT` frame appended per record.
        // Legacy versions have no DELT framing, and a model whose base
        // snapshot was invalidated (replacement store) serializes its current
        // state directly — both fall through to the flat path below, which
        // stays byte-identical to the pre-delta format.
        if version >= ALIGNED_VERSION && !self.deltas.is_empty() {
            if let Some(base) = &self.base_artifact {
                return write_delta_chain(base, &self.deltas, out);
            }
        }
        let mut tags: Vec<[u8; 4]> = vec![TAG_SYMB, TAG_CONF, TAG_TOKD, TAG_GRPH, TAG_STOR];
        if version >= 2 {
            tags.push(TAG_DISC);
        }
        tags.push(TAG_META);

        out.write_all(MAGIC)?;
        out.write_all(&version.to_le_bytes())?;
        out.write_all(&(tags.len() as u32).to_le_bytes())?;
        let mut offset = 12u64; // bytes written so far = next absolute offset

        let aligned = version >= ALIGNED_VERSION;
        for tag in tags {
            let mut w = ByteWriter::new();
            match tag {
                TAG_SYMB => self.graph.symbols().encode_into(&mut w),
                TAG_CONF => encode_config(&self.config, &mut w, version),
                TAG_TOKD => self.tokenized.encode_into(&mut w),
                TAG_GRPH if aligned => self.graph.encode_aligned_into(&mut w),
                TAG_GRPH => self.graph.encode_into(&mut w),
                TAG_STOR if aligned => self.store.encode_aligned_into(&mut w),
                TAG_STOR => self.store.encode_into(&mut w),
                TAG_DISC => encode_disc(self, &mut w),
                TAG_META => encode_meta(self, &mut w),
                _ => unreachable!("unknown chunk tag"),
            }
            let payload = w.into_bytes();
            out.write_all(&tag)?;
            out.write_all(&(payload.len() as u64).to_le_bytes())?;
            out.write_all(&crc32(&payload).to_le_bytes())?;
            offset += 16;
            if aligned {
                // One more u32 (pad_len) precedes the pad; align the
                // *payload's* absolute offset to 8.
                let pad = (8 - ((offset + 4) % 8)) % 8;
                out.write_all(&(pad as u32).to_le_bytes())?;
                out.write_all(&[0u8; 8][..pad as usize])?;
                offset += 4 + pad;
            }
            out.write_all(&payload)?;
            offset += payload.len() as u64;
        }
        Ok(())
    }

    /// Decodes a model from artifact bytes. Bounded end to end: hostile
    /// buffers yield a typed error, never a panic or an oversized
    /// allocation. Every chunk CRC is verified eagerly.
    pub fn from_bytes(bytes: &[u8]) -> Result<LevaModel, ArtifactError> {
        let chunks = walk_chunks(bytes, true)?;
        Self::decode_from_chunks(&chunks, None)
    }

    /// Assembles a model from a validated chunk table. When `mapped` is
    /// given (the [`LevaModel::load_mmap`] path, v3 only) the `STOR` and
    /// `GRPH` chunks are served zero-copy out of the mapping with their
    /// CRCs deferred to first featurization; otherwise they are
    /// heap-decoded.
    fn decode_from_chunks(
        chunks: &Chunks<'_>,
        mapped: Option<&Arc<MmapFile>>,
    ) -> Result<LevaModel, ArtifactError> {
        let version = chunks.version;
        let aligned = version >= ALIGNED_VERSION;

        let mut r = ByteReader::new(chunks.symb.payload);
        let symbols = Arc::new(TokenInterner::decode(&mut r).map_err(in_chunk("SYMB"))?);
        finish_chunk(&r, "SYMB")?;

        let mut r = ByteReader::new(chunks.conf.payload);
        let config = decode_config(&mut r, version).map_err(in_chunk("CONF"))?;
        finish_chunk(&r, "CONF")?;

        let mut r = ByteReader::new(chunks.tokd.payload);
        let tokenized =
            TokenizedDatabase::decode(&mut r, Arc::clone(&symbols)).map_err(in_chunk("TOKD"))?;
        finish_chunk(&r, "TOKD")?;

        let graph = match mapped {
            Some(map) => LevaGraph::from_mapped(
                Arc::clone(&symbols),
                Arc::clone(map),
                chunks.grph.offset,
                chunks.grph.payload.len(),
                chunks.grph.crc,
            )
            .map_err(in_chunk("GRPH"))?,
            None => {
                let mut r = ByteReader::new(chunks.grph.payload);
                let graph = if aligned {
                    LevaGraph::decode_aligned(&mut r, Arc::clone(&symbols))
                } else {
                    LevaGraph::decode(&mut r, Arc::clone(&symbols))
                }
                .map_err(in_chunk("GRPH"))?;
                finish_chunk(&r, "GRPH")?;
                graph
            }
        };

        let store = match mapped {
            Some(map) => EmbeddingStore::from_mapped(
                Arc::clone(&symbols),
                Arc::clone(map),
                chunks.stor.offset,
                chunks.stor.payload.len(),
                chunks.stor.crc,
            )
            .map_err(in_chunk("STOR"))?,
            None => {
                let mut r = ByteReader::new(chunks.stor.payload);
                let store = if aligned {
                    EmbeddingStore::decode_aligned_with_symbols(&mut r, Arc::clone(&symbols))
                } else {
                    EmbeddingStore::decode_with_symbols(&mut r, Arc::clone(&symbols))
                }
                .map_err(in_chunk("STOR"))?;
                finish_chunk(&r, "STOR")?;
                store
            }
        };

        // DISC is required at v2+ and absent at v1 (legacy artifacts load
        // with an empty discovery set).
        let (discovered, discovery_injection) = match &chunks.disc {
            Some(disc) => {
                let mut r = ByteReader::new(disc.payload);
                let decoded = decode_disc(&mut r).map_err(in_chunk("DISC"))?;
                finish_chunk(&r, "DISC")?;
                decoded
            }
            None => (Vec::new(), RelationshipInjection::default()),
        };

        let mut r = ByteReader::new(chunks.meta.payload);
        let meta = decode_meta(&mut r).map_err(in_chunk("META"))?;
        finish_chunk(&r, "META")?;

        if meta.base_table_index >= tokenized.tables.len()
            || meta.base_table_index >= graph.table_names().len()
        {
            return Err(ArtifactError::Decode {
                chunk: "META",
                source: DecodeError::Invalid("base table index out of range"),
            });
        }

        check_consistency(&config, &tokenized, &graph, &store, &meta, &discovered)?;

        let mut model = LevaModel {
            config,
            store,
            graph,
            tokenized,
            timings: meta.timings,
            method_used: meta.method_used,
            memory: meta.memory,
            base_table: meta.base_table,
            base_table_index: meta.base_table_index,
            target_column: meta.target_column,
            ingest: meta.ingest,
            discovered,
            discovery_injection,
            deltas: Vec::new(),
            base_artifact: None,
            featurizer: std::sync::OnceLock::new(),
        };
        if !chunks.delt.is_empty() {
            replay_deltas(&mut model, &chunks.delt)?;
        }
        Ok(model)
    }

    /// Writes the model artifact to a file, streaming chunk by chunk (no
    /// full in-memory byte image; see [`LevaModel::save_to`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        self.save_to(&mut out)?;
        Ok(out.into_inner().map_err(|e| e.into_error())?.sync_all()?)
    }

    /// Loads a model artifact from a file into heap memory.
    pub fn load(path: impl AsRef<Path>) -> Result<LevaModel, ArtifactError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Loads a model artifact with the embedding store *and* the graph
    /// adjacency served zero-copy from a private file mapping — O(1) load
    /// time in the `STOR` and `GRPH` sizes.
    ///
    /// v3 artifacts map the file once; the small chunks are decoded and
    /// CRC-verified eagerly, while the dense `STOR` matrix gets O(rows)
    /// geometry validation and the `GRPH` CSR arrays get O(n + m) structural
    /// validation (bounds, alignment, monotone offsets, in-range targets)
    /// here, with their CRCs — and the adjacency symmetry invariant —
    /// verified lazily on the first featurization (`LevaModel::featurize`
    /// surfaces a flipped bit as [`ArtifactError::ChecksumMismatch`]; until
    /// then reads are memory-safe but unverified). v1/v2 artifacts fall
    /// back to the heap decoding of [`LevaModel::from_bytes`]
    /// byte-for-byte.
    pub fn load_mmap(path: impl AsRef<Path>) -> Result<LevaModel, ArtifactError> {
        let map = Arc::new(MmapFile::open(path.as_ref())?);
        let bytes: &[u8] = &map;
        let chunks = walk_chunks(bytes, false)?;
        if chunks.version < ALIGNED_VERSION || !map.is_mapped() {
            // Legacy layouts have no aligned payloads to serve in place
            // (and a heap fallback read has nothing to map); re-walk with
            // eager CRCs so STOR corruption is caught now, as `from_bytes`
            // would.
            let chunks = walk_chunks(bytes, true)?;
            return Self::decode_from_chunks(&chunks, None);
        }
        Self::decode_from_chunks(&chunks, Some(&map))
    }
}

/// Emits a delta chain: the captured base artifact with its header chunk
/// count raised by the number of deltas, then one `DELT` frame per record
/// in append order, each using the v3 aligned framing continued from the
/// base's final byte offset. Reloading the chain and saving it again
/// reproduces these bytes exactly (the base snapshot is canonical).
fn write_delta_chain(
    base: &[u8],
    deltas: &[DeltaRecord],
    mut out: impl Write,
) -> std::io::Result<()> {
    debug_assert!(base.len() >= 12, "base snapshot must carry a header");
    let base_count = u32::from_le_bytes(base[8..12].try_into().expect("4-byte slice"));
    let chunk_count = base_count + deltas.len() as u32;
    out.write_all(&base[..8])?;
    out.write_all(&chunk_count.to_le_bytes())?;
    out.write_all(&base[12..])?;
    let mut offset = base.len() as u64;
    for record in deltas {
        let mut w = ByteWriter::new();
        record.encode_into(&mut w);
        let payload = w.into_bytes();
        out.write_all(&TAG_DELT)?;
        out.write_all(&(payload.len() as u64).to_le_bytes())?;
        out.write_all(&crc32(&payload).to_le_bytes())?;
        offset += 16;
        let pad = (8 - ((offset + 4) % 8)) % 8;
        out.write_all(&(pad as u32).to_le_bytes())?;
        out.write_all(&[0u8; 8][..pad as usize])?;
        offset += 4 + pad;
        out.write_all(&payload)?;
        offset += payload.len() as u64;
    }
    Ok(())
}

/// Replays a chain's `DELT` chunks onto the freshly decoded base model, in
/// artifact order. All records are decoded (bounded, typed) before the
/// first one mutates the model. A mapped base is settled heap-side first —
/// replay rewrites the graph and store, so the zero-copy view cannot
/// survive an append anyway — which verifies the deferred `STOR`/`GRPH`
/// CRCs up front. The canonical re-encoding of the decoded base is
/// captured as the chain's base snapshot *before* replay, so saving the
/// loaded model reproduces the chain byte-for-byte (save→load→save is a
/// fixed point).
fn replay_deltas(model: &mut LevaModel, delt: &[RawChunk<'_>]) -> Result<(), ArtifactError> {
    let mut records = Vec::with_capacity(delt.len());
    for raw in delt {
        records.push(DeltaRecord::decode(raw.payload).map_err(in_chunk("DELT"))?);
    }
    if !model.graph.ensure_heap() {
        return Err(ArtifactError::ChecksumMismatch {
            chunk: "GRPH".to_owned(),
        });
    }
    if !model.store.materialize() {
        return Err(ArtifactError::ChecksumMismatch {
            chunk: "STOR".to_owned(),
        });
    }
    model.base_artifact = Some(model.to_bytes());
    for record in &records {
        model.apply_delta(record).map_err(|e| match e {
            crate::LevaError::Artifact(a) => a,
            crate::LevaError::Relational(_) | crate::LevaError::Ingest { .. } => {
                ArtifactError::Decode {
                    chunk: "DELT",
                    source: DecodeError::Invalid(
                        "delta references a table or arity the base model does not have",
                    ),
                }
            }
            _ => ArtifactError::Inconsistent {
                reason: "delta replay failed against the decoded base model",
            },
        })?;
    }
    Ok(())
}

/// One located chunk: its payload slice, absolute offset of that payload
/// within the artifact, and declared CRC-32.
struct RawChunk<'a> {
    payload: &'a [u8],
    offset: usize,
    crc: u32,
}

/// The parsed chunk table of an artifact (header validated, every chunk
/// located, required chunks present exactly once).
struct Chunks<'a> {
    version: u32,
    symb: RawChunk<'a>,
    conf: RawChunk<'a>,
    tokd: RawChunk<'a>,
    grph: RawChunk<'a>,
    stor: RawChunk<'a>,
    disc: Option<RawChunk<'a>>,
    meta: RawChunk<'a>,
    /// Appended-delta chunks in artifact order (v3+, possibly empty).
    delt: Vec<RawChunk<'a>>,
}

/// Walks the container: validates magic/version, frames every chunk
/// (including the v3 alignment padding, which must be canonical and
/// zero-filled), and CRC-checks payloads. With `eager_crc = false` the
/// (large) `STOR` and `GRPH` payloads' CRCs are *not* hashed here — the
/// caller defers them to first use ([`LevaModel::load_mmap`]).
fn walk_chunks(bytes: &[u8], eager_crc: bool) -> Result<Chunks<'_>, ArtifactError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take_raw(4).map_err(|_| ArtifactError::BadMagic)?;
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = r.take_u32().map_err(|_| ArtifactError::Truncated)?;
    if !(MIN_ARTIFACT_VERSION..=ARTIFACT_VERSION).contains(&version) {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    let chunk_count = r.take_u32().map_err(|_| ArtifactError::Truncated)?;

    let mut symb: Option<RawChunk<'_>> = None;
    let mut conf: Option<RawChunk<'_>> = None;
    let mut tokd: Option<RawChunk<'_>> = None;
    let mut grph: Option<RawChunk<'_>> = None;
    let mut stor: Option<RawChunk<'_>> = None;
    let mut disc: Option<RawChunk<'_>> = None;
    let mut meta: Option<RawChunk<'_>> = None;
    let mut delt: Vec<RawChunk<'_>> = Vec::new();
    for _ in 0..chunk_count {
        let tag: [u8; 4] = r
            .take_raw(4)
            .map_err(|_| ArtifactError::Truncated)?
            .try_into()
            .expect("4-byte slice");
        let tag_name = || String::from_utf8_lossy(&tag).into_owned();
        let len = r.take_u64().map_err(|_| ArtifactError::Truncated)?;
        let len = usize::try_from(len).map_err(|_| ArtifactError::Truncated)?;
        let crc = r.take_u32().map_err(|_| ArtifactError::Truncated)?;
        if version >= ALIGNED_VERSION {
            let pad = r.take_u32().map_err(|_| ArtifactError::Truncated)? as usize;
            // The pad must be exactly what 8-aligns the payload's absolute
            // offset, and zero-filled — anything else is corruption (the
            // header fields outside the payload are not CRC-covered).
            let expected = (8 - (r.consumed() % 8)) % 8;
            if pad != expected {
                return Err(ArtifactError::Misaligned { chunk: tag_name() });
            }
            let pad_bytes = r.take_raw(pad).map_err(|_| ArtifactError::Truncated)?;
            if pad_bytes.iter().any(|&b| b != 0) {
                return Err(ArtifactError::Misaligned { chunk: tag_name() });
            }
        }
        let offset = r.consumed();
        // Declared length validated against the remaining buffer before
        // the payload is sliced (take_raw never reads past the end).
        let payload = r.take_raw(len).map_err(|_| ArtifactError::Truncated)?;
        if (eager_crc || (tag != TAG_STOR && tag != TAG_GRPH)) && crc32(payload) != crc {
            return Err(ArtifactError::ChecksumMismatch { chunk: tag_name() });
        }
        // DELT is the one repeatable tag (a chain carries one per append),
        // and only v3+ writers produce it; in a legacy artifact it is as
        // malformed as an unknown tag. Its CRC was verified above
        // unconditionally (it is never deferred: replay mutates the model).
        if tag == TAG_DELT {
            if version < ALIGNED_VERSION {
                return Err(ArtifactError::BadChunk { chunk: tag_name() });
            }
            delt.push(RawChunk {
                payload,
                offset,
                crc,
            });
            continue;
        }
        let slot = match tag {
            TAG_SYMB => &mut symb,
            TAG_CONF => &mut conf,
            TAG_TOKD => &mut tokd,
            TAG_GRPH => &mut grph,
            TAG_STOR => &mut stor,
            // A DISC chunk in a v1 artifact is as malformed as an
            // unknown tag: v1 writers never produced one.
            TAG_DISC if version >= 2 => &mut disc,
            TAG_META => &mut meta,
            _ => return Err(ArtifactError::BadChunk { chunk: tag_name() }),
        };
        if slot
            .replace(RawChunk {
                payload,
                offset,
                crc,
            })
            .is_some()
        {
            return Err(ArtifactError::BadChunk { chunk: tag_name() });
        }
    }
    if !r.is_exhausted() {
        return Err(ArtifactError::TrailingData);
    }
    if version >= 2 && disc.is_none() {
        return Err(ArtifactError::MissingChunk("DISC"));
    }
    Ok(Chunks {
        version,
        symb: symb.ok_or(ArtifactError::MissingChunk("SYMB"))?,
        conf: conf.ok_or(ArtifactError::MissingChunk("CONF"))?,
        tokd: tokd.ok_or(ArtifactError::MissingChunk("TOKD"))?,
        grph: grph.ok_or(ArtifactError::MissingChunk("GRPH"))?,
        stor: stor.ok_or(ArtifactError::MissingChunk("STOR"))?,
        disc,
        meta: meta.ok_or(ArtifactError::MissingChunk("META"))?,
        delt,
    })
}

/// Cross-chunk consistency: each chunk decodes in isolation against the
/// shared symbol table, but featurization relies on invariants *between*
/// chunks — e.g. that the tokenized database and the graph agree on how
/// many rows each table has. An artifact whose chunks individually decode
/// but mutually contradict (crafted, or stitched from two models) is
/// rejected here so no deploy path ever walks off the graph.
fn check_consistency(
    config: &LevaConfig,
    tokenized: &TokenizedDatabase,
    graph: &LevaGraph,
    store: &EmbeddingStore,
    meta: &Meta,
    discovered: &[DiscoveredRelationship],
) -> Result<(), ArtifactError> {
    let fail = |reason: &'static str| Err(ArtifactError::Inconsistent { reason });
    if tokenized.tables.len() != graph.table_names().len() {
        return fail("TOKD and GRPH disagree on the number of tables");
    }
    for (t, table) in tokenized.tables.iter().enumerate() {
        if table.name != graph.table_names()[t] {
            return fail("TOKD and GRPH disagree on a table name");
        }
        if Some(table.rows.len()) != graph.table_row_count(t) {
            return fail("TOKD row count disagrees with GRPH row-node count");
        }
        for (row, tok_row) in table.rows.iter().enumerate() {
            let node = graph
                .try_row_node(t, row)
                .map_err(|_| ArtifactError::Inconsistent {
                    reason: "GRPH row node missing for a TOKD row",
                })?;
            if graph.token(node) != tok_row.row_token {
                return fail("TOKD row identity token disagrees with GRPH row node");
            }
        }
    }
    if meta.base_table != graph.table_names()[meta.base_table_index] {
        return fail("META base table name disagrees with GRPH table names");
    }
    let expected_dim = match meta.method_used {
        MethodUsed::MatrixFactorization => config.mf.dim,
        MethodUsed::RandomWalk => config.sgns.dim,
    };
    if store.dim() != expected_dim {
        return fail("STOR dimension disagrees with the CONF embedding dimension");
    }
    // Every discovered relationship must reference tables and columns the
    // tokenized database actually has — a DISC chunk naming phantom
    // columns was crafted or stitched from another model.
    for rel in discovered {
        if tokenized
            .encoder(&rel.from_table, &rel.from_column)
            .is_none()
        {
            return fail("DISC references a table/column absent from TOKD (from side)");
        }
        if tokenized.encoder(&rel.to_table, &rel.to_column).is_none() {
            return fail("DISC references a table/column absent from TOKD (to side)");
        }
    }
    Ok(())
}

// --- CONF chunk ---------------------------------------------------------

fn encode_config(c: &LevaConfig, w: &mut ByteWriter, version: u32) {
    w.put_u64(c.dim as u64);
    w.put_u64(c.textify.bin_count as u64);
    w.put_u8(match c.textify.histogram {
        HistogramChoice::Kurtosis => 0,
        HistogramChoice::ForceEquiWidth => 1,
        HistogramChoice::ForceEquiDepth => 2,
    });
    w.put_f64(c.textify.classify.key_distinct_ratio);
    w.put_u8(u8::from(c.textify.split_multiword));
    w.put_u64(c.textify.threads as u64);
    w.put_f64(c.graph.theta_range);
    w.put_f64(c.graph.theta_min);
    w.put_u8(u8::from(c.graph.weighted));
    match c.method {
        EmbeddingMethod::MatrixFactorization => w.put_u8(0),
        EmbeddingMethod::RandomWalk => w.put_u8(1),
        EmbeddingMethod::Auto {
            memory_budget_bytes,
        } => {
            w.put_u8(2);
            w.put_u64(memory_budget_bytes as u64);
        }
    }
    w.put_u64(c.mf.dim as u64);
    w.put_f64(c.mf.tau);
    w.put_u64(c.mf.oversample as u64);
    w.put_u64(c.mf.power_iters as u64);
    w.put_u8(u8::from(c.mf.spectral_propagation));
    w.put_u64(c.mf.seed);
    w.put_u64(c.mf.threads as u64);
    w.put_u64(c.walks.walk_length as u64);
    w.put_u64(c.walks.walks_per_node as u64);
    w.put_u8(u8::from(c.walks.weighted));
    w.put_u8(u8::from(c.walks.restart_balancing));
    w.put_f64(c.walks.restart_fraction);
    match c.walks.visit_limit {
        None => w.put_u8(0),
        Some(limit) => {
            w.put_u8(1);
            w.put_u64(limit as u64);
        }
    }
    w.put_u64(c.walks.seed);
    w.put_u64(c.walks.threads as u64);
    w.put_u64(c.sgns.dim as u64);
    w.put_u64(c.sgns.window as u64);
    w.put_u64(c.sgns.negative as u64);
    w.put_u64(c.sgns.epochs as u64);
    w.put_f64(c.sgns.initial_lr);
    w.put_f64(c.sgns.min_lr);
    w.put_u64(c.sgns.seed);
    w.put_u64(c.sgns.threads as u64);
    w.put_u8(match c.featurization {
        Featurization::RowOnly => 0,
        Featurization::RowPlusValue => 1,
    });
    w.put_u64(c.seed);
    w.put_u64(c.threads as u64);
    // Discovery fields exist from format version 2.
    if version >= 2 {
        w.put_u8(u8::from(c.discovery.enabled));
        w.put_f64(c.discovery.threshold);
        w.put_u64(c.discovery.max_candidates_per_column as u64);
        w.put_u64(c.discovery.min_distinct as u64);
        w.put_u64(c.discovery.signature_size as u64);
        w.put_u64(c.discovery.threads as u64);
    }
    // The storage-precision tag exists from format version 3.
    if version >= 3 {
        w.put_u8(c.precision.as_u8());
    }
}

fn decode_config(r: &mut ByteReader<'_>, version: u32) -> Result<LevaConfig, DecodeError> {
    // Struct-literal fields evaluate in source order, which keeps these
    // reads aligned with `encode_config`'s writes.
    let mut cfg = LevaConfig {
        dim: r.take_usize()?,
        textify: leva_textify::TextifyConfig {
            bin_count: r.take_usize()?,
            histogram: match r.take_u8()? {
                0 => HistogramChoice::Kurtosis,
                1 => HistogramChoice::ForceEquiWidth,
                2 => HistogramChoice::ForceEquiDepth,
                _ => return Err(DecodeError::Invalid("unknown histogram choice tag")),
            },
            classify: leva_textify::ClassifyConfig {
                key_distinct_ratio: r.take_f64()?,
            },
            split_multiword: r.take_u8()? != 0,
            threads: r.take_usize()?,
        },
        graph: leva_graph::GraphConfig {
            theta_range: r.take_f64()?,
            theta_min: r.take_f64()?,
            weighted: r.take_u8()? != 0,
        },
        method: match r.take_u8()? {
            0 => EmbeddingMethod::MatrixFactorization,
            1 => EmbeddingMethod::RandomWalk,
            2 => EmbeddingMethod::Auto {
                memory_budget_bytes: r.take_usize()?,
            },
            _ => return Err(DecodeError::Invalid("unknown embedding method tag")),
        },
        mf: leva_embedding::MfConfig {
            dim: r.take_usize()?,
            tau: r.take_f64()?,
            oversample: r.take_usize()?,
            power_iters: r.take_usize()?,
            spectral_propagation: r.take_u8()? != 0,
            seed: r.take_u64()?,
            threads: r.take_usize()?,
        },
        walks: leva_embedding::WalkConfig {
            walk_length: r.take_usize()?,
            walks_per_node: r.take_usize()?,
            weighted: r.take_u8()? != 0,
            restart_balancing: r.take_u8()? != 0,
            restart_fraction: r.take_f64()?,
            visit_limit: match r.take_u8()? {
                0 => None,
                1 => Some(r.take_usize()?),
                _ => return Err(DecodeError::Invalid("unknown visit limit tag")),
            },
            seed: r.take_u64()?,
            threads: r.take_usize()?,
        },
        sgns: leva_embedding::SgnsConfig {
            dim: r.take_usize()?,
            window: r.take_usize()?,
            negative: r.take_usize()?,
            epochs: r.take_usize()?,
            initial_lr: r.take_f64()?,
            min_lr: r.take_f64()?,
            seed: r.take_u64()?,
            threads: r.take_usize()?,
            // Derived from the pipeline precision (decoded below), not
            // separately encoded.
            precision: Precision::F64,
        },
        featurization: match r.take_u8()? {
            0 => Featurization::RowOnly,
            1 => Featurization::RowPlusValue,
            _ => return Err(DecodeError::Invalid("unknown featurization tag")),
        },
        seed: r.take_u64()?,
        threads: r.take_usize()?,
        // Written after `threads` (literal order = read order); absent in
        // v1 artifacts, which predate the discovery stage.
        discovery: if version >= 2 {
            DiscoveryConfig {
                enabled: r.take_u8()? != 0,
                threshold: {
                    let t = r.take_f64()?;
                    if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                        return Err(DecodeError::Invalid("discovery threshold out of range"));
                    }
                    t
                },
                max_candidates_per_column: r.take_usize()?,
                min_distinct: r.take_usize()?,
                signature_size: r.take_usize()?,
                threads: r.take_usize()?,
            }
        } else {
            DiscoveryConfig::default()
        },
        // Written after the discovery fields; absent before v3 (all legacy
        // artifacts were built at full f64 precision).
        precision: if version >= 3 {
            Precision::from_u8(r.take_u8()?).ok_or(DecodeError::Invalid("unknown precision tag"))?
        } else {
            Precision::F64
        },
    };
    cfg.sgns.precision = cfg.precision;
    Ok(cfg)
}

// --- DISC chunk ---------------------------------------------------------

fn encode_disc(m: &LevaModel, w: &mut ByteWriter) {
    w.put_u32(u32::try_from(m.discovered.len()).expect("relationship count fits u32"));
    for rel in &m.discovered {
        w.put_str(&rel.from_table);
        w.put_str(&rel.from_column);
        w.put_str(&rel.to_table);
        w.put_str(&rel.to_column);
        w.put_f64(rel.containment);
        w.put_f64(rel.jaccard);
    }
    w.put_u64(m.discovery_injection.groups_applied as u64);
    w.put_u64(m.discovery_injection.edges_added as u64);
    w.put_u64(m.discovery_injection.value_nodes_added as u64);
}

fn decode_disc(
    r: &mut ByteReader<'_>,
) -> Result<(Vec<DiscoveredRelationship>, RelationshipInjection), DecodeError> {
    // Minimum encoded relationship: four 4-byte string length prefixes plus
    // two f64 scores.
    let n_rels = r.take_count(32)?;
    let mut discovered = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        let rel = DiscoveredRelationship {
            from_table: r.take_str()?.to_owned(),
            from_column: r.take_str()?.to_owned(),
            to_table: r.take_str()?.to_owned(),
            to_column: r.take_str()?.to_owned(),
            containment: r.take_f64()?,
            jaccard: r.take_f64()?,
        };
        // Confidence scores are probabilities by construction; anything
        // else (NaN, inf, negative) is hostile bytes.
        if !rel.containment.is_finite() || !(0.0..=1.0).contains(&rel.containment) {
            return Err(DecodeError::Invalid(
                "non-finite or out-of-range containment",
            ));
        }
        if !rel.jaccard.is_finite() || !(0.0..=1.0).contains(&rel.jaccard) {
            return Err(DecodeError::Invalid("non-finite or out-of-range jaccard"));
        }
        discovered.push(rel);
    }
    let injection = RelationshipInjection {
        groups_applied: r.take_usize()?,
        edges_added: r.take_usize()?,
        value_nodes_added: r.take_usize()?,
    };
    Ok((discovered, injection))
}

// --- META chunk ---------------------------------------------------------

struct Meta {
    base_table: String,
    base_table_index: usize,
    target_column: Option<String>,
    method_used: MethodUsed,
    memory: MemoryEstimate,
    timings: StageTimings,
    ingest: Vec<IngestReport>,
}

fn put_duration(w: &mut ByteWriter, d: Duration) {
    w.put_u64(d.as_secs());
    w.put_u32(d.subsec_nanos());
}

fn take_duration(r: &mut ByteReader<'_>) -> Result<Duration, DecodeError> {
    let secs = r.take_u64()?;
    let nanos = r.take_u32()?;
    if nanos >= 1_000_000_000 {
        return Err(DecodeError::Invalid("subsecond nanos out of range"));
    }
    Ok(Duration::new(secs, nanos))
}

fn encode_meta(m: &LevaModel, w: &mut ByteWriter) {
    w.put_str(&m.base_table);
    w.put_u64(m.base_table_index as u64);
    match &m.target_column {
        None => w.put_u8(0),
        Some(t) => {
            w.put_u8(1);
            w.put_str(t);
        }
    }
    w.put_u8(match m.method_used {
        MethodUsed::MatrixFactorization => 0,
        MethodUsed::RandomWalk => 1,
    });
    w.put_u64(m.memory.mf_bytes as u64);
    w.put_u64(m.memory.rw_bytes as u64);
    let stages = m.timings.stages();
    w.put_u32(u32::try_from(stages.len()).expect("stage count fits u32"));
    for s in stages {
        w.put_str(&s.stage);
        put_duration(w, s.wall);
        put_duration(w, s.cpu);
        w.put_u64(s.threads as u64);
    }
    w.put_u32(u32::try_from(m.ingest.len()).expect("report count fits u32"));
    for rep in &m.ingest {
        w.put_str(&rep.table);
        w.put_u64(rep.rows_ingested as u64);
        w.put_u64(rep.rows_ragged as u64);
        w.put_u64(rep.cells_non_finite as u64);
        w.put_u64(rep.cells_non_canonical as u64);
        w.put_u64(rep.quote_repairs as u64);
        w.put_u32(u32::try_from(rep.sentinel_census.len()).expect("census fits u32"));
        for (sentinel, count) in &rep.sentinel_census {
            w.put_str(sentinel);
            w.put_u64(*count as u64);
        }
        w.put_u32(u32::try_from(rep.issues.len()).expect("issue count fits u32"));
        for issue in &rep.issues {
            w.put_u64(issue.line as u64);
            w.put_u64(issue.column as u64);
            w.put_str(&issue.value);
            w.put_u8(issue_reason_tag(issue.reason));
        }
        w.put_u64(rep.issues_total as u64);
    }
}

fn issue_reason_tag(r: IssueReason) -> u8 {
    match r {
        IssueReason::RaggedRowPadded => 0,
        IssueReason::RaggedRowTruncated => 1,
        IssueReason::NonFiniteNumeric => 2,
        IssueReason::NonCanonicalNumeric => 3,
        IssueReason::BareQuote => 4,
        IssueReason::UnterminatedQuote => 5,
        IssueReason::InvalidUtf8 => 6,
    }
}

fn issue_reason_from_tag(t: u8) -> Result<IssueReason, DecodeError> {
    Ok(match t {
        0 => IssueReason::RaggedRowPadded,
        1 => IssueReason::RaggedRowTruncated,
        2 => IssueReason::NonFiniteNumeric,
        3 => IssueReason::NonCanonicalNumeric,
        4 => IssueReason::BareQuote,
        5 => IssueReason::UnterminatedQuote,
        6 => IssueReason::InvalidUtf8,
        _ => return Err(DecodeError::Invalid("unknown issue reason tag")),
    })
}

fn decode_meta(r: &mut ByteReader<'_>) -> Result<Meta, DecodeError> {
    let base_table = r.take_str()?.to_owned();
    let base_table_index = r.take_usize()?;
    let target_column = match r.take_u8()? {
        0 => None,
        1 => Some(r.take_str()?.to_owned()),
        _ => return Err(DecodeError::Invalid("unknown target column tag")),
    };
    let method_used = match r.take_u8()? {
        0 => MethodUsed::MatrixFactorization,
        1 => MethodUsed::RandomWalk,
        _ => return Err(DecodeError::Invalid("unknown method-used tag")),
    };
    let memory = MemoryEstimate {
        mf_bytes: r.take_usize()?,
        rw_bytes: r.take_usize()?,
    };
    let n_stages = r.take_count(4)?;
    let mut timings = StageTimings::default();
    for _ in 0..n_stages {
        let stage = r.take_str()?.to_owned();
        let wall = take_duration(r)?;
        let cpu = take_duration(r)?;
        let threads = r.take_usize()?;
        timings.push_with(stage, wall, cpu, threads);
    }
    let n_reports = r.take_count(4)?;
    let mut ingest = Vec::with_capacity(n_reports);
    for _ in 0..n_reports {
        let mut rep = IngestReport::new(r.take_str()?.to_owned());
        rep.rows_ingested = r.take_usize()?;
        rep.rows_ragged = r.take_usize()?;
        rep.cells_non_finite = r.take_usize()?;
        rep.cells_non_canonical = r.take_usize()?;
        rep.quote_repairs = r.take_usize()?;
        let n_sentinels = r.take_count(8)?;
        for _ in 0..n_sentinels {
            let sentinel = r.take_str()?.to_owned();
            let count = r.take_usize()?;
            rep.sentinel_census.insert(sentinel, count);
        }
        let n_issues = r.take_count(8)?;
        for _ in 0..n_issues {
            rep.issues.push(CellIssue {
                line: r.take_usize()?,
                column: r.take_usize()?,
                value: r.take_str()?.to_owned(),
                reason: issue_reason_from_tag(r.take_u8()?)?,
            });
        }
        rep.issues_total = r.take_usize()?;
        ingest.push(rep);
    }
    Ok(Meta {
        base_table,
        base_table_index,
        target_column,
        method_used,
        memory,
        timings,
        ingest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Leva;
    use leva_relational::{Database, IngestOptions, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "grp", "amount", "target"]);
        let mut aux = Table::new("aux", vec!["id", "tag"]);
        for i in 0..25 {
            base.push_row(vec![
                format!("e{i}").into(),
                ["a", "b", "c"][i % 3].into(),
                Value::Float(i as f64),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
            aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 4).into()])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        db
    }

    fn fit() -> LevaModel {
        Leva::with_config(LevaConfig::fast())
            .base_table("base")
            .target("target")
            .fit(&db())
            .unwrap()
    }

    fn assert_bitwise_equal_features(a: &LevaModel, b: &LevaModel) {
        for feat in [Featurization::RowOnly, Featurization::RowPlusValue] {
            let (xa, xb) = (a.featurize_base(feat), b.featurize_base(feat));
            assert_eq!(xa.rows(), xb.rows());
            assert_eq!(xa.cols(), xb.cols());
            for row in 0..xa.rows() {
                for (x, y) in xa.row(row).iter().zip(xb.row(row)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "featurize_base differs");
                }
            }
        }
        let mut test = Table::new("test", vec!["id", "grp", "amount"]);
        test.push_row(vec!["e3".into(), "a".into(), Value::Float(7.0)])
            .unwrap();
        test.push_row(vec!["unseen".into(), "c".into(), Value::Float(1e9)])
            .unwrap();
        let (xa, xb) = (
            a.featurize_external(&test, Featurization::RowPlusValue),
            b.featurize_external(&test, Featurization::RowPlusValue),
        );
        for row in 0..xa.rows() {
            for (x, y) in xa.row(row).iter().zip(xb.row(row)) {
                assert_eq!(x.to_bits(), y.to_bits(), "featurize_external differs");
            }
        }
    }

    #[test]
    fn round_trip_is_bitwise_identical() {
        let model = fit();
        let bytes = model.to_bytes();
        let back = LevaModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.base_table, model.base_table);
        assert_eq!(back.base_table_index, model.base_table_index);
        assert_eq!(back.target_column, model.target_column);
        assert_eq!(back.method_used, model.method_used);
        assert_eq!(back.memory, model.memory);
        assert_eq!(back.timings, model.timings);
        assert_eq!(back.store.len(), model.store.len());
        assert_eq!(back.graph.n_nodes(), model.graph.n_nodes());
        assert_bitwise_equal_features(&model, &back);
        // And re-serializing the loaded model reproduces the exact bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn file_round_trip() {
        let model = fit();
        let dir = std::env::temp_dir().join("leva_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.leva");
        model.save(&path).unwrap();
        let back = LevaModel::load(&path).unwrap();
        assert_bitwise_equal_features(&model, &back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_reports_survive() {
        let mut base = String::from("id,grp,target\n");
        for i in 0..30 {
            base.push_str(&format!("e{i},{},{}\n", ["a", "b"][i % 2], i % 2));
        }
        base.push_str("e0\n"); // ragged
        let model = Leva::with_config(LevaConfig::fast())
            .base_table("base")
            .target("target")
            .ingest_options(IngestOptions::lenient())
            .fit_csv(&[("base", &base)])
            .unwrap();
        let back = LevaModel::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(back.ingest.len(), 1);
        assert_eq!(back.ingest[0].rows_ragged, model.ingest[0].rows_ragged);
        assert_eq!(back.ingest[0].issues.len(), model.ingest[0].issues.len());
        assert_eq!(
            back.ingest[0].sentinel_census,
            model.ingest[0].sentinel_census
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let model = fit();
        let bytes = model.to_bytes();
        // Exhaustive over the header and chunk table, sampled past that.
        for cut in (0..bytes.len()).step_by(97).chain(0..64) {
            assert!(
                LevaModel::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let model = fit();
        let mut bytes = model.to_bytes();
        // Flipping any single bit must yield an error: headers are
        // validated, payload corruption trips the CRC. Sample every 131st
        // byte to keep runtime sane, plus the whole header region.
        let positions: Vec<usize> = (0..bytes.len())
            .step_by(131)
            .chain(0..32.min(bytes.len()))
            .collect();
        for pos in positions {
            for bit in 0..8 {
                bytes[pos] ^= 1 << bit;
                assert!(
                    LevaModel::from_bytes(&bytes).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
                bytes[pos] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let model = fit();
        let mut bytes = model.to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::UnsupportedVersion(99)
        ));
        assert!(matches!(
            LevaModel::from_bytes(b"NOPE").unwrap_err(),
            ArtifactError::BadMagic
        ));
    }

    #[test]
    fn inflated_chunk_length_is_bounded() {
        let model = fit();
        let mut bytes = model.to_bytes();
        // First chunk's u64 length field sits at offset 16 (magic 4 +
        // version 4 + count 4 + tag 4). Declare ~17 exabytes.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::Truncated
        ));
    }

    #[test]
    fn duplicate_and_trailing_chunks_are_rejected() {
        let model = fit();
        let bytes = model.to_bytes();
        // Append a copy of the first chunk without bumping the count:
        // trailing data.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            LevaModel::from_bytes(&trailing).unwrap_err(),
            ArtifactError::TrailingData
        ));
        // Unknown tag.
        let mut unknown = bytes.clone();
        unknown[12..16].copy_from_slice(b"WHAT");
        assert!(matches!(
            LevaModel::from_bytes(&unknown).unwrap_err(),
            ArtifactError::BadChunk { .. }
        ));
    }

    #[test]
    fn config_round_trips_every_field() {
        let mut cfg = LevaConfig::default()
            .with_dim(17)
            .with_seed(0xabcdef)
            .with_threads(3);
        cfg.method = EmbeddingMethod::Auto {
            memory_budget_bytes: 123_456,
        };
        cfg.textify.split_multiword = true;
        cfg.textify.histogram = HistogramChoice::ForceEquiDepth;
        cfg.walks.visit_limit = Some(42);
        cfg.featurization = Featurization::RowOnly;
        cfg.discovery.enabled = true;
        cfg.discovery.threshold = 0.85;
        cfg.discovery.min_distinct = 11;
        let mut w = ByteWriter::new();
        encode_config(&cfg, &mut w, ARTIFACT_VERSION);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_config(&mut r, ARTIFACT_VERSION).unwrap();
        assert!(r.is_exhausted());
        let mut w2 = ByteWriter::new();
        encode_config(&back, &mut w2, ARTIFACT_VERSION);
        assert_eq!(w2.into_bytes(), bytes, "config codec not a fixed point");
        assert_eq!(back.dim, 17);
        assert_eq!(back.walks.visit_limit, Some(42));
        assert_eq!(back.featurization, Featurization::RowOnly);
        assert!(back.discovery.enabled);
        assert_eq!(back.discovery.threshold, 0.85);
        assert_eq!(back.discovery.min_distinct, 11);
    }

    /// A fit with discovery enabled on a DB whose join is only reachable by
    /// content discovery (differently-named int key columns, no declared
    /// FKs): the discovered set and injection counters survive the round
    /// trip and the artifact is a byte-level fixed point.
    fn fit_with_discovery() -> LevaModel {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "machine_id", "target"]);
        for i in 0..30i64 {
            base.push_row(vec![
                format!("e{i}").into(),
                Value::Int(100 + i % 12),
                Value::Int(i % 2),
            ])
            .unwrap();
        }
        let mut machines = Table::new("machines", vec!["mid", "site"]);
        for i in 0..12i64 {
            machines
                .push_row(vec![
                    Value::Int(100 + i),
                    ["north", "south"][(i % 2) as usize].into(),
                ])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(machines).unwrap();
        let mut cfg = LevaConfig::fast();
        cfg.discovery.enabled = true;
        cfg.discovery.threshold = 0.5;
        Leva::with_config(cfg)
            .base_table("base")
            .target("target")
            .fit(&db)
            .unwrap()
    }

    #[test]
    fn discovery_round_trips_bitwise() {
        let model = fit_with_discovery();
        assert!(
            !model.discovered.is_empty(),
            "fixture DB has a shared id column to discover"
        );
        assert!(model.discovery_injection.edges_added > 0);
        let bytes = model.to_bytes();
        let back = LevaModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.discovered, model.discovered);
        assert_eq!(back.discovery_injection, model.discovery_injection);
        assert_eq!(back.to_bytes(), bytes, "save→load→save not a fixed point");
    }

    #[test]
    fn legacy_v1_artifacts_still_load() {
        let model = fit();
        let v1 = model.to_bytes_with_version(1);
        assert_eq!(v1[4], 1, "version byte");
        let back = LevaModel::from_bytes(&v1).unwrap();
        assert!(back.discovered.is_empty());
        assert_eq!(back.discovery_injection, Default::default());
        assert!(!back.config.discovery.enabled);
        assert_bitwise_equal_features(&model, &back);
        // Re-saving a legacy model upgrades it to the current version.
        let upgraded = back.to_bytes();
        assert_eq!(upgraded[4], ARTIFACT_VERSION as u8);
        LevaModel::from_bytes(&upgraded).unwrap();
    }

    #[test]
    fn legacy_v2_artifacts_still_load() {
        let model = fit_with_discovery();
        let v2 = model.to_bytes_with_version(2);
        assert_eq!(v2[4], 2, "version byte");
        let back = LevaModel::from_bytes(&v2).unwrap();
        assert_eq!(back.discovered, model.discovered);
        assert_eq!(back.discovery_injection, model.discovery_injection);
        assert_eq!(back.config.precision, Precision::F64);
        assert_bitwise_equal_features(&model, &back);
        // And through the mmap entry point (heap fallback for pre-v3).
        let dir = std::env::temp_dir().join("leva_artifact_v2_mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.leva");
        std::fs::write(&path, &v2).unwrap();
        let mapped = LevaModel::load_mmap(&path).unwrap();
        assert!(!mapped.store.is_mapped(), "pre-v3 loads land on the heap");
        assert_bitwise_equal_features(&model, &mapped);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delt_chunk_in_legacy_artifact_is_bad_chunk() {
        // Legacy writers never produced DELT frames; a chain frame spliced
        // into a v1/v2 container (legacy framing: tag|len|crc|payload, no
        // pad) must be rejected as BadChunk even with a valid CRC.
        let model = fit();
        for version in [1u32, 2] {
            let legacy = model.to_bytes_with_version(version);
            let payload = {
                let mut w = ByteWriter::new();
                DeltaRecord {
                    table: "t".into(),
                    rows: Vec::new(),
                }
                .encode_into(&mut w);
                w.into_bytes()
            };
            let mut bytes = legacy.clone();
            let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
            bytes[8..12].copy_from_slice(&(count + 1).to_le_bytes());
            bytes.extend_from_slice(&TAG_DELT);
            bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
            match LevaModel::from_bytes(&bytes) {
                Err(ArtifactError::BadChunk { chunk }) => assert_eq!(chunk, "DELT"),
                other => panic!("v{version}: expected BadChunk, got {other:?}"),
            }
        }
    }

    #[test]
    fn streaming_save_matches_to_bytes() {
        let model = fit_with_discovery();
        let buffered = model.to_bytes();
        let mut streamed = Vec::new();
        model.save_to(&mut streamed).unwrap();
        assert_eq!(streamed, buffered, "save_to and to_bytes diverge");
    }

    #[test]
    fn v3_payloads_are_8_aligned() {
        let model = fit();
        let bytes = model.to_bytes();
        assert_eq!(bytes[4], ARTIFACT_VERSION as u8);
        for tag in [TAG_SYMB, TAG_CONF, TAG_TOKD, TAG_GRPH, TAG_STOR, TAG_META] {
            let (_, start, _) = find_chunk(&bytes, tag).expect("chunk present");
            assert_eq!(
                start % 8,
                0,
                "{} payload misaligned",
                String::from_utf8_lossy(&tag)
            );
        }
    }

    #[test]
    fn tampered_pad_is_misaligned_error() {
        let model = fit();
        let base = model.to_bytes();
        // Find a chunk with a non-empty pad and flip one pad byte.
        let count = u32::from_le_bytes(base[8..12].try_into().unwrap());
        let mut off = 12;
        let mut tampered = None;
        for _ in 0..count {
            let len = u64::from_le_bytes(base[off + 4..off + 12].try_into().unwrap()) as usize;
            let pad = u32::from_le_bytes(base[off + 16..off + 20].try_into().unwrap()) as usize;
            if pad > 0 && tampered.is_none() {
                let mut bytes = base.clone();
                bytes[off + 20] = 0xff; // first pad byte
                tampered = Some(bytes);
            }
            off += 20 + pad + len;
        }
        let bytes = tampered.expect("at least one chunk carries padding");
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::Misaligned { .. }
        ));
        // A wrong pad *length* is equally misaligned.
        let mut bytes = base.clone();
        let pad = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        bytes[28..32].copy_from_slice(&(pad + 1).to_le_bytes());
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::Misaligned { .. }
        ));
    }

    #[test]
    fn precision_round_trips_in_conf() {
        for p in [Precision::F32, Precision::Int8] {
            let cfg = LevaConfig::default().with_precision(p);
            let mut w = ByteWriter::new();
            encode_config(&cfg, &mut w, ARTIFACT_VERSION);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = decode_config(&mut r, ARTIFACT_VERSION).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(back.precision, p);
            assert_eq!(back.sgns.precision, p, "SGNS precision derives from CONF");
        }
    }

    #[test]
    fn disc_chunk_in_v1_artifact_is_rejected() {
        let model = fit();
        let mut bytes = model.to_bytes();
        // Downgrade the version header but keep the v2 chunk set: the DISC
        // chunk (and the CONF discovery fields) make it malformed.
        bytes[4] = 1;
        assert!(LevaModel::from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_disc_scores_are_rejected() {
        let model = fit_with_discovery();
        let base = model.to_bytes();
        let (_, start, len) = find_chunk(&base, TAG_DISC).expect("DISC chunk present");
        let needle = model.discovered[0].containment.to_le_bytes();
        let pos = start
            + base[start..start + len]
                .windows(8)
                .position(|w| w == needle)
                .expect("containment bytes present in DISC payload");
        for bad in [f64::NAN, f64::INFINITY, -0.25, 1.5] {
            let mut bytes = base.clone();
            bytes[pos..pos + 8].copy_from_slice(&bad.to_le_bytes());
            patch_disc_crc(&mut bytes);
            let err = LevaModel::from_bytes(&bytes).unwrap_err();
            assert!(
                matches!(err, ArtifactError::Decode { chunk: "DISC", .. }),
                "score {bad} gave {err}"
            );
        }
    }

    #[test]
    fn disc_phantom_references_are_inconsistent() {
        let model = fit_with_discovery();
        let mut bytes = model.to_bytes();
        // Same-length table-name swap inside the DISC chunk keeps every
        // length field valid while pointing at a phantom table.
        let (_, start, len) = find_chunk(&bytes, TAG_DISC).expect("DISC chunk present");
        let payload = &mut bytes[start..start + len];
        let from_table = model.discovered[0].from_table.as_bytes();
        let pos = payload
            .windows(from_table.len())
            .position(|w| w == from_table)
            .expect("table name in DISC payload");
        for b in &mut payload[pos..pos + from_table.len()] {
            *b = b'z';
        }
        patch_disc_crc(&mut bytes);
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::Inconsistent { .. }
        ));
    }

    /// Byte offsets of a chunk within an artifact (any version):
    /// `(crc_field_offset, payload_offset, payload_len)`.
    fn find_chunk(bytes: &[u8], tag: [u8; 4]) -> Option<(usize, usize, usize)> {
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let mut off = 12;
        for _ in 0..count {
            let t: [u8; 4] = bytes[off..off + 4].try_into().unwrap();
            let len = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap()) as usize;
            let crc_off = off + 12;
            let start = if version >= ALIGNED_VERSION {
                let pad =
                    u32::from_le_bytes(bytes[off + 16..off + 20].try_into().unwrap()) as usize;
                off + 20 + pad
            } else {
                off + 16
            };
            if t == tag {
                return Some((crc_off, start, len));
            }
            off = start + len;
        }
        None
    }

    /// Recomputes the DISC chunk's CRC after a test mutated its payload.
    fn patch_disc_crc(bytes: &mut [u8]) {
        let (crc_off, start, len) = find_chunk(bytes, TAG_DISC).expect("DISC chunk present");
        let crc = crc32(&bytes[start..start + len]);
        bytes[crc_off..crc_off + 4].copy_from_slice(&crc.to_le_bytes());
    }
}
