//! Persistent model artifacts (DESIGN.md §6.10): a versioned, checksummed
//! binary container for the *whole* fitted [`LevaModel`], so the expensive
//! embedding construction is paid once and serving loads the result.
//!
//! Container layout (little-endian throughout):
//!
//! ```text
//! magic "LEVA" | u32 version | u32 chunk_count
//! then per chunk: [u8; 4] tag | u64 payload_len | u32 crc32 | payload
//! ```
//!
//! Chunks, in writing order (decoding accepts any order but requires each
//! exactly once):
//!
//! | tag    | payload                                                    |
//! |--------|------------------------------------------------------------|
//! | `SYMB` | interner symbol table (token text in dense-id order)       |
//! | `CONF` | the full [`LevaConfig`]                                    |
//! | `TOKD` | tokenized database: attributes, encoders, row streams      |
//! | `GRPH` | graph CSR: node tokens, adjacency + weights, row offsets   |
//! | `STOR` | dense embedding store (f64 bit patterns)                   |
//! | `DISC` | discovered relationships + injection counters (v2 only)    |
//! | `META` | base table, method, memory estimate, timings, ingest audit |
//!
//! Version history: v1 had no `DISC` chunk and no discovery fields in
//! `CONF`; v1 artifacts still load, with an empty discovery set and the
//! default (disabled) discovery configuration. v2 artifacts require `DISC`.
//!
//! Decoding is strictly bounded: every declared length is validated against
//! the remaining buffer *before* any allocation, all length arithmetic is
//! checked, and every failure is a typed [`ArtifactError`] — hostile bytes
//! can never panic the process or allocate beyond the input size. Payload
//! corruption that still parses is caught by the per-chunk CRC-32.

use crate::config::{EmbeddingMethod, Featurization, LevaConfig};
use crate::memory::MemoryEstimate;
use crate::pipeline::{LevaModel, MethodUsed};
use crate::timing::StageTimings;
use leva_discovery::{DiscoveredRelationship, DiscoveryConfig};
use leva_embedding::EmbeddingStore;
use leva_graph::{LevaGraph, RelationshipInjection};
use leva_interner::codec::{crc32, ByteReader, ByteWriter, DecodeError};
use leva_interner::TokenInterner;
use leva_relational::{CellIssue, IngestReport, IssueReason};
use leva_textify::{HistogramChoice, TokenizedDatabase};
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const MAGIC: &[u8; 4] = b"LEVA";
const ARTIFACT_VERSION: u32 = 2;
/// Oldest artifact version [`LevaModel::from_bytes`] still accepts.
const MIN_ARTIFACT_VERSION: u32 = 1;

const TAG_SYMB: [u8; 4] = *b"SYMB";
const TAG_CONF: [u8; 4] = *b"CONF";
const TAG_TOKD: [u8; 4] = *b"TOKD";
const TAG_GRPH: [u8; 4] = *b"GRPH";
const TAG_STOR: [u8; 4] = *b"STOR";
const TAG_DISC: [u8; 4] = *b"DISC";
const TAG_META: [u8; 4] = *b"META";

/// Errors produced while reading or writing a model artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The buffer does not start with the artifact magic bytes.
    BadMagic,
    /// The artifact was written by an unsupported format version.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// A chunk payload's CRC-32 does not match its header.
    ChecksumMismatch {
        /// Tag of the corrupt chunk.
        chunk: String,
    },
    /// A chunk appeared twice, or an unknown tag was encountered.
    BadChunk {
        /// Tag of the offending chunk.
        chunk: String,
    },
    /// A required chunk is absent.
    MissingChunk(&'static str),
    /// Bytes remain after the declared chunks (or within a chunk after its
    /// declared content).
    TrailingData,
    /// A chunk payload failed bounded decoding.
    Decode {
        /// Tag of the chunk that failed.
        chunk: &'static str,
        /// The underlying decode failure.
        source: DecodeError,
    },
    /// Every chunk decoded, but the chunks contradict each other (e.g. the
    /// tokenized database claims more rows than the graph has row nodes).
    /// A model assembled from such chunks would misbehave at featurization
    /// time, so the artifact is rejected at load.
    Inconsistent {
        /// What disagreed.
        reason: &'static str,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "artifact I/O error: {e}"),
            Self::BadMagic => write!(f, "not a Leva model artifact (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported artifact version {v}"),
            Self::Truncated => write!(f, "artifact truncated"),
            Self::ChecksumMismatch { chunk } => {
                write!(f, "chunk {chunk:?} failed its CRC-32 check")
            }
            Self::BadChunk { chunk } => write!(f, "duplicate or unknown chunk {chunk:?}"),
            Self::MissingChunk(tag) => write!(f, "required chunk {tag:?} is missing"),
            Self::TrailingData => write!(f, "artifact has trailing bytes"),
            Self::Decode { chunk, source } => {
                write!(f, "chunk {chunk:?} failed to decode: {source}")
            }
            Self::Inconsistent { reason } => {
                write!(f, "artifact chunks are mutually inconsistent: {reason}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Maps a chunk's [`DecodeError`] into a tagged [`ArtifactError`].
fn in_chunk(chunk: &'static str) -> impl Fn(DecodeError) -> ArtifactError {
    move |source| ArtifactError::Decode { chunk, source }
}

/// A chunk decoder must consume its payload exactly.
fn finish_chunk(r: &ByteReader<'_>, chunk: &'static str) -> Result<(), ArtifactError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(ArtifactError::Decode {
            chunk,
            source: DecodeError::Invalid("trailing bytes in chunk"),
        })
    }
}

impl LevaModel {
    /// Serializes the whole fitted model into the chunked artifact format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_version(ARTIFACT_VERSION)
    }

    /// Serializes at an explicit format version. Version 1 omits the `DISC`
    /// chunk and the discovery fields of `CONF` — kept (crate-private) so
    /// tests can fabricate genuine legacy artifacts.
    pub(crate) fn to_bytes_with_version(&self, version: u32) -> Vec<u8> {
        let mut chunks: Vec<([u8; 4], Vec<u8>)> = vec![
            (TAG_SYMB, {
                let mut w = ByteWriter::new();
                self.graph.symbols().encode_into(&mut w);
                w.into_bytes()
            }),
            (TAG_CONF, {
                let mut w = ByteWriter::new();
                encode_config(&self.config, &mut w, version);
                w.into_bytes()
            }),
            (TAG_TOKD, {
                let mut w = ByteWriter::new();
                self.tokenized.encode_into(&mut w);
                w.into_bytes()
            }),
            (TAG_GRPH, {
                let mut w = ByteWriter::new();
                self.graph.encode_into(&mut w);
                w.into_bytes()
            }),
            (TAG_STOR, {
                let mut w = ByteWriter::new();
                self.store.encode_into(&mut w);
                w.into_bytes()
            }),
        ];
        if version >= 2 {
            chunks.push((TAG_DISC, {
                let mut w = ByteWriter::new();
                encode_disc(self, &mut w);
                w.into_bytes()
            }));
        }
        chunks.push((TAG_META, {
            let mut w = ByteWriter::new();
            encode_meta(self, &mut w);
            w.into_bytes()
        }));
        let total: usize = 12 + chunks.iter().map(|(_, p)| p.len() + 16).sum::<usize>();
        let mut out = ByteWriter::with_capacity(total);
        out.put_raw(MAGIC);
        out.put_u32(version);
        out.put_u32(chunks.len() as u32);
        for (tag, payload) in &chunks {
            out.put_raw(tag);
            out.put_u64(payload.len() as u64);
            out.put_u32(crc32(payload));
            out.put_raw(payload);
        }
        out.into_bytes()
    }

    /// Decodes a model from artifact bytes. Bounded end to end: hostile
    /// buffers yield a typed error, never a panic or an oversized
    /// allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<LevaModel, ArtifactError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take_raw(4).map_err(|_| ArtifactError::BadMagic)?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.take_u32().map_err(|_| ArtifactError::Truncated)?;
        if !(MIN_ARTIFACT_VERSION..=ARTIFACT_VERSION).contains(&version) {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let chunk_count = r.take_u32().map_err(|_| ArtifactError::Truncated)?;

        let mut symb: Option<&[u8]> = None;
        let mut conf: Option<&[u8]> = None;
        let mut tokd: Option<&[u8]> = None;
        let mut grph: Option<&[u8]> = None;
        let mut stor: Option<&[u8]> = None;
        let mut disc: Option<&[u8]> = None;
        let mut meta: Option<&[u8]> = None;
        for _ in 0..chunk_count {
            let tag: [u8; 4] = r
                .take_raw(4)
                .map_err(|_| ArtifactError::Truncated)?
                .try_into()
                .expect("4-byte slice");
            let len = r.take_u64().map_err(|_| ArtifactError::Truncated)?;
            let len = usize::try_from(len).map_err(|_| ArtifactError::Truncated)?;
            let crc = r.take_u32().map_err(|_| ArtifactError::Truncated)?;
            // Declared length validated against the remaining buffer before
            // the payload is sliced (take_raw never reads past the end).
            let payload = r.take_raw(len).map_err(|_| ArtifactError::Truncated)?;
            if crc32(payload) != crc {
                return Err(ArtifactError::ChecksumMismatch {
                    chunk: String::from_utf8_lossy(&tag).into_owned(),
                });
            }
            let slot = match tag {
                TAG_SYMB => &mut symb,
                TAG_CONF => &mut conf,
                TAG_TOKD => &mut tokd,
                TAG_GRPH => &mut grph,
                TAG_STOR => &mut stor,
                // A DISC chunk in a v1 artifact is as malformed as an
                // unknown tag: v1 writers never produced one.
                TAG_DISC if version >= 2 => &mut disc,
                TAG_META => &mut meta,
                _ => {
                    return Err(ArtifactError::BadChunk {
                        chunk: String::from_utf8_lossy(&tag).into_owned(),
                    })
                }
            };
            if slot.replace(payload).is_some() {
                return Err(ArtifactError::BadChunk {
                    chunk: String::from_utf8_lossy(&tag).into_owned(),
                });
            }
        }
        if !r.is_exhausted() {
            return Err(ArtifactError::TrailingData);
        }

        let mut r = ByteReader::new(symb.ok_or(ArtifactError::MissingChunk("SYMB"))?);
        let symbols = Arc::new(TokenInterner::decode(&mut r).map_err(in_chunk("SYMB"))?);
        finish_chunk(&r, "SYMB")?;

        let mut r = ByteReader::new(conf.ok_or(ArtifactError::MissingChunk("CONF"))?);
        let config = decode_config(&mut r, version).map_err(in_chunk("CONF"))?;
        finish_chunk(&r, "CONF")?;

        let mut r = ByteReader::new(tokd.ok_or(ArtifactError::MissingChunk("TOKD"))?);
        let tokenized =
            TokenizedDatabase::decode(&mut r, Arc::clone(&symbols)).map_err(in_chunk("TOKD"))?;
        finish_chunk(&r, "TOKD")?;

        let mut r = ByteReader::new(grph.ok_or(ArtifactError::MissingChunk("GRPH"))?);
        let graph = LevaGraph::decode(&mut r, Arc::clone(&symbols)).map_err(in_chunk("GRPH"))?;
        finish_chunk(&r, "GRPH")?;

        let mut r = ByteReader::new(stor.ok_or(ArtifactError::MissingChunk("STOR"))?);
        let store = EmbeddingStore::decode_with_symbols(&mut r, Arc::clone(&symbols))
            .map_err(in_chunk("STOR"))?;
        finish_chunk(&r, "STOR")?;

        // DISC is required at v2 and absent at v1 (legacy artifacts load
        // with an empty discovery set).
        let (discovered, discovery_injection) = if version >= 2 {
            let mut r = ByteReader::new(disc.ok_or(ArtifactError::MissingChunk("DISC"))?);
            let decoded = decode_disc(&mut r).map_err(in_chunk("DISC"))?;
            finish_chunk(&r, "DISC")?;
            decoded
        } else {
            (Vec::new(), RelationshipInjection::default())
        };

        let mut r = ByteReader::new(meta.ok_or(ArtifactError::MissingChunk("META"))?);
        let meta = decode_meta(&mut r).map_err(in_chunk("META"))?;
        finish_chunk(&r, "META")?;

        if meta.base_table_index >= tokenized.tables.len()
            || meta.base_table_index >= graph.table_names().len()
        {
            return Err(ArtifactError::Decode {
                chunk: "META",
                source: DecodeError::Invalid("base table index out of range"),
            });
        }

        check_consistency(&config, &tokenized, &graph, &store, &meta, &discovered)?;

        Ok(LevaModel {
            config,
            store,
            graph,
            tokenized,
            timings: meta.timings,
            method_used: meta.method_used,
            memory: meta.memory,
            base_table: meta.base_table,
            base_table_index: meta.base_table_index,
            target_column: meta.target_column,
            ingest: meta.ingest,
            discovered,
            discovery_injection,
            featurizer: std::sync::OnceLock::new(),
        })
    }

    /// Writes the model artifact to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Loads a model artifact from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<LevaModel, ArtifactError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// Cross-chunk consistency: each chunk decodes in isolation against the
/// shared symbol table, but featurization relies on invariants *between*
/// chunks — e.g. that the tokenized database and the graph agree on how
/// many rows each table has. An artifact whose chunks individually decode
/// but mutually contradict (crafted, or stitched from two models) is
/// rejected here so no deploy path ever walks off the graph.
fn check_consistency(
    config: &LevaConfig,
    tokenized: &TokenizedDatabase,
    graph: &LevaGraph,
    store: &EmbeddingStore,
    meta: &Meta,
    discovered: &[DiscoveredRelationship],
) -> Result<(), ArtifactError> {
    let fail = |reason: &'static str| Err(ArtifactError::Inconsistent { reason });
    if tokenized.tables.len() != graph.table_names().len() {
        return fail("TOKD and GRPH disagree on the number of tables");
    }
    for (t, table) in tokenized.tables.iter().enumerate() {
        if table.name != graph.table_names()[t] {
            return fail("TOKD and GRPH disagree on a table name");
        }
        if Some(table.rows.len()) != graph.table_row_count(t) {
            return fail("TOKD row count disagrees with GRPH row-node count");
        }
        for (row, tok_row) in table.rows.iter().enumerate() {
            let node = graph
                .try_row_node(t, row)
                .map_err(|_| ArtifactError::Inconsistent {
                    reason: "GRPH row node missing for a TOKD row",
                })?;
            if graph.token(node) != tok_row.row_token {
                return fail("TOKD row identity token disagrees with GRPH row node");
            }
        }
    }
    if meta.base_table != graph.table_names()[meta.base_table_index] {
        return fail("META base table name disagrees with GRPH table names");
    }
    let expected_dim = match meta.method_used {
        MethodUsed::MatrixFactorization => config.mf.dim,
        MethodUsed::RandomWalk => config.sgns.dim,
    };
    if store.dim() != expected_dim {
        return fail("STOR dimension disagrees with the CONF embedding dimension");
    }
    // Every discovered relationship must reference tables and columns the
    // tokenized database actually has — a DISC chunk naming phantom
    // columns was crafted or stitched from another model.
    for rel in discovered {
        if tokenized
            .encoder(&rel.from_table, &rel.from_column)
            .is_none()
        {
            return fail("DISC references a table/column absent from TOKD (from side)");
        }
        if tokenized.encoder(&rel.to_table, &rel.to_column).is_none() {
            return fail("DISC references a table/column absent from TOKD (to side)");
        }
    }
    Ok(())
}

// --- CONF chunk ---------------------------------------------------------

fn encode_config(c: &LevaConfig, w: &mut ByteWriter, version: u32) {
    w.put_u64(c.dim as u64);
    w.put_u64(c.textify.bin_count as u64);
    w.put_u8(match c.textify.histogram {
        HistogramChoice::Kurtosis => 0,
        HistogramChoice::ForceEquiWidth => 1,
        HistogramChoice::ForceEquiDepth => 2,
    });
    w.put_f64(c.textify.classify.key_distinct_ratio);
    w.put_u8(u8::from(c.textify.split_multiword));
    w.put_u64(c.textify.threads as u64);
    w.put_f64(c.graph.theta_range);
    w.put_f64(c.graph.theta_min);
    w.put_u8(u8::from(c.graph.weighted));
    match c.method {
        EmbeddingMethod::MatrixFactorization => w.put_u8(0),
        EmbeddingMethod::RandomWalk => w.put_u8(1),
        EmbeddingMethod::Auto {
            memory_budget_bytes,
        } => {
            w.put_u8(2);
            w.put_u64(memory_budget_bytes as u64);
        }
    }
    w.put_u64(c.mf.dim as u64);
    w.put_f64(c.mf.tau);
    w.put_u64(c.mf.oversample as u64);
    w.put_u64(c.mf.power_iters as u64);
    w.put_u8(u8::from(c.mf.spectral_propagation));
    w.put_u64(c.mf.seed);
    w.put_u64(c.mf.threads as u64);
    w.put_u64(c.walks.walk_length as u64);
    w.put_u64(c.walks.walks_per_node as u64);
    w.put_u8(u8::from(c.walks.weighted));
    w.put_u8(u8::from(c.walks.restart_balancing));
    w.put_f64(c.walks.restart_fraction);
    match c.walks.visit_limit {
        None => w.put_u8(0),
        Some(limit) => {
            w.put_u8(1);
            w.put_u64(limit as u64);
        }
    }
    w.put_u64(c.walks.seed);
    w.put_u64(c.walks.threads as u64);
    w.put_u64(c.sgns.dim as u64);
    w.put_u64(c.sgns.window as u64);
    w.put_u64(c.sgns.negative as u64);
    w.put_u64(c.sgns.epochs as u64);
    w.put_f64(c.sgns.initial_lr);
    w.put_f64(c.sgns.min_lr);
    w.put_u64(c.sgns.seed);
    w.put_u64(c.sgns.threads as u64);
    w.put_u8(match c.featurization {
        Featurization::RowOnly => 0,
        Featurization::RowPlusValue => 1,
    });
    w.put_u64(c.seed);
    w.put_u64(c.threads as u64);
    // Discovery fields exist from format version 2.
    if version >= 2 {
        w.put_u8(u8::from(c.discovery.enabled));
        w.put_f64(c.discovery.threshold);
        w.put_u64(c.discovery.max_candidates_per_column as u64);
        w.put_u64(c.discovery.min_distinct as u64);
        w.put_u64(c.discovery.signature_size as u64);
        w.put_u64(c.discovery.threads as u64);
    }
}

fn decode_config(r: &mut ByteReader<'_>, version: u32) -> Result<LevaConfig, DecodeError> {
    // Struct-literal fields evaluate in source order, which keeps these
    // reads aligned with `encode_config`'s writes.
    Ok(LevaConfig {
        dim: r.take_usize()?,
        textify: leva_textify::TextifyConfig {
            bin_count: r.take_usize()?,
            histogram: match r.take_u8()? {
                0 => HistogramChoice::Kurtosis,
                1 => HistogramChoice::ForceEquiWidth,
                2 => HistogramChoice::ForceEquiDepth,
                _ => return Err(DecodeError::Invalid("unknown histogram choice tag")),
            },
            classify: leva_textify::ClassifyConfig {
                key_distinct_ratio: r.take_f64()?,
            },
            split_multiword: r.take_u8()? != 0,
            threads: r.take_usize()?,
        },
        graph: leva_graph::GraphConfig {
            theta_range: r.take_f64()?,
            theta_min: r.take_f64()?,
            weighted: r.take_u8()? != 0,
        },
        method: match r.take_u8()? {
            0 => EmbeddingMethod::MatrixFactorization,
            1 => EmbeddingMethod::RandomWalk,
            2 => EmbeddingMethod::Auto {
                memory_budget_bytes: r.take_usize()?,
            },
            _ => return Err(DecodeError::Invalid("unknown embedding method tag")),
        },
        mf: leva_embedding::MfConfig {
            dim: r.take_usize()?,
            tau: r.take_f64()?,
            oversample: r.take_usize()?,
            power_iters: r.take_usize()?,
            spectral_propagation: r.take_u8()? != 0,
            seed: r.take_u64()?,
            threads: r.take_usize()?,
        },
        walks: leva_embedding::WalkConfig {
            walk_length: r.take_usize()?,
            walks_per_node: r.take_usize()?,
            weighted: r.take_u8()? != 0,
            restart_balancing: r.take_u8()? != 0,
            restart_fraction: r.take_f64()?,
            visit_limit: match r.take_u8()? {
                0 => None,
                1 => Some(r.take_usize()?),
                _ => return Err(DecodeError::Invalid("unknown visit limit tag")),
            },
            seed: r.take_u64()?,
            threads: r.take_usize()?,
        },
        sgns: leva_embedding::SgnsConfig {
            dim: r.take_usize()?,
            window: r.take_usize()?,
            negative: r.take_usize()?,
            epochs: r.take_usize()?,
            initial_lr: r.take_f64()?,
            min_lr: r.take_f64()?,
            seed: r.take_u64()?,
            threads: r.take_usize()?,
        },
        featurization: match r.take_u8()? {
            0 => Featurization::RowOnly,
            1 => Featurization::RowPlusValue,
            _ => return Err(DecodeError::Invalid("unknown featurization tag")),
        },
        seed: r.take_u64()?,
        threads: r.take_usize()?,
        // Written after `threads` (literal order = read order); absent in
        // v1 artifacts, which predate the discovery stage.
        discovery: if version >= 2 {
            DiscoveryConfig {
                enabled: r.take_u8()? != 0,
                threshold: {
                    let t = r.take_f64()?;
                    if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                        return Err(DecodeError::Invalid("discovery threshold out of range"));
                    }
                    t
                },
                max_candidates_per_column: r.take_usize()?,
                min_distinct: r.take_usize()?,
                signature_size: r.take_usize()?,
                threads: r.take_usize()?,
            }
        } else {
            DiscoveryConfig::default()
        },
    })
}

// --- DISC chunk ---------------------------------------------------------

fn encode_disc(m: &LevaModel, w: &mut ByteWriter) {
    w.put_u32(u32::try_from(m.discovered.len()).expect("relationship count fits u32"));
    for rel in &m.discovered {
        w.put_str(&rel.from_table);
        w.put_str(&rel.from_column);
        w.put_str(&rel.to_table);
        w.put_str(&rel.to_column);
        w.put_f64(rel.containment);
        w.put_f64(rel.jaccard);
    }
    w.put_u64(m.discovery_injection.groups_applied as u64);
    w.put_u64(m.discovery_injection.edges_added as u64);
    w.put_u64(m.discovery_injection.value_nodes_added as u64);
}

fn decode_disc(
    r: &mut ByteReader<'_>,
) -> Result<(Vec<DiscoveredRelationship>, RelationshipInjection), DecodeError> {
    // Minimum encoded relationship: four 4-byte string length prefixes plus
    // two f64 scores.
    let n_rels = r.take_count(32)?;
    let mut discovered = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        let rel = DiscoveredRelationship {
            from_table: r.take_str()?.to_owned(),
            from_column: r.take_str()?.to_owned(),
            to_table: r.take_str()?.to_owned(),
            to_column: r.take_str()?.to_owned(),
            containment: r.take_f64()?,
            jaccard: r.take_f64()?,
        };
        // Confidence scores are probabilities by construction; anything
        // else (NaN, inf, negative) is hostile bytes.
        if !rel.containment.is_finite() || !(0.0..=1.0).contains(&rel.containment) {
            return Err(DecodeError::Invalid(
                "non-finite or out-of-range containment",
            ));
        }
        if !rel.jaccard.is_finite() || !(0.0..=1.0).contains(&rel.jaccard) {
            return Err(DecodeError::Invalid("non-finite or out-of-range jaccard"));
        }
        discovered.push(rel);
    }
    let injection = RelationshipInjection {
        groups_applied: r.take_usize()?,
        edges_added: r.take_usize()?,
        value_nodes_added: r.take_usize()?,
    };
    Ok((discovered, injection))
}

// --- META chunk ---------------------------------------------------------

struct Meta {
    base_table: String,
    base_table_index: usize,
    target_column: Option<String>,
    method_used: MethodUsed,
    memory: MemoryEstimate,
    timings: StageTimings,
    ingest: Vec<IngestReport>,
}

fn put_duration(w: &mut ByteWriter, d: Duration) {
    w.put_u64(d.as_secs());
    w.put_u32(d.subsec_nanos());
}

fn take_duration(r: &mut ByteReader<'_>) -> Result<Duration, DecodeError> {
    let secs = r.take_u64()?;
    let nanos = r.take_u32()?;
    if nanos >= 1_000_000_000 {
        return Err(DecodeError::Invalid("subsecond nanos out of range"));
    }
    Ok(Duration::new(secs, nanos))
}

fn encode_meta(m: &LevaModel, w: &mut ByteWriter) {
    w.put_str(&m.base_table);
    w.put_u64(m.base_table_index as u64);
    match &m.target_column {
        None => w.put_u8(0),
        Some(t) => {
            w.put_u8(1);
            w.put_str(t);
        }
    }
    w.put_u8(match m.method_used {
        MethodUsed::MatrixFactorization => 0,
        MethodUsed::RandomWalk => 1,
    });
    w.put_u64(m.memory.mf_bytes as u64);
    w.put_u64(m.memory.rw_bytes as u64);
    let stages = m.timings.stages();
    w.put_u32(u32::try_from(stages.len()).expect("stage count fits u32"));
    for s in stages {
        w.put_str(&s.stage);
        put_duration(w, s.wall);
        put_duration(w, s.cpu);
        w.put_u64(s.threads as u64);
    }
    w.put_u32(u32::try_from(m.ingest.len()).expect("report count fits u32"));
    for rep in &m.ingest {
        w.put_str(&rep.table);
        w.put_u64(rep.rows_ingested as u64);
        w.put_u64(rep.rows_ragged as u64);
        w.put_u64(rep.cells_non_finite as u64);
        w.put_u64(rep.cells_non_canonical as u64);
        w.put_u64(rep.quote_repairs as u64);
        w.put_u32(u32::try_from(rep.sentinel_census.len()).expect("census fits u32"));
        for (sentinel, count) in &rep.sentinel_census {
            w.put_str(sentinel);
            w.put_u64(*count as u64);
        }
        w.put_u32(u32::try_from(rep.issues.len()).expect("issue count fits u32"));
        for issue in &rep.issues {
            w.put_u64(issue.line as u64);
            w.put_u64(issue.column as u64);
            w.put_str(&issue.value);
            w.put_u8(issue_reason_tag(issue.reason));
        }
        w.put_u64(rep.issues_total as u64);
    }
}

fn issue_reason_tag(r: IssueReason) -> u8 {
    match r {
        IssueReason::RaggedRowPadded => 0,
        IssueReason::RaggedRowTruncated => 1,
        IssueReason::NonFiniteNumeric => 2,
        IssueReason::NonCanonicalNumeric => 3,
        IssueReason::BareQuote => 4,
        IssueReason::UnterminatedQuote => 5,
        IssueReason::InvalidUtf8 => 6,
    }
}

fn issue_reason_from_tag(t: u8) -> Result<IssueReason, DecodeError> {
    Ok(match t {
        0 => IssueReason::RaggedRowPadded,
        1 => IssueReason::RaggedRowTruncated,
        2 => IssueReason::NonFiniteNumeric,
        3 => IssueReason::NonCanonicalNumeric,
        4 => IssueReason::BareQuote,
        5 => IssueReason::UnterminatedQuote,
        6 => IssueReason::InvalidUtf8,
        _ => return Err(DecodeError::Invalid("unknown issue reason tag")),
    })
}

fn decode_meta(r: &mut ByteReader<'_>) -> Result<Meta, DecodeError> {
    let base_table = r.take_str()?.to_owned();
    let base_table_index = r.take_usize()?;
    let target_column = match r.take_u8()? {
        0 => None,
        1 => Some(r.take_str()?.to_owned()),
        _ => return Err(DecodeError::Invalid("unknown target column tag")),
    };
    let method_used = match r.take_u8()? {
        0 => MethodUsed::MatrixFactorization,
        1 => MethodUsed::RandomWalk,
        _ => return Err(DecodeError::Invalid("unknown method-used tag")),
    };
    let memory = MemoryEstimate {
        mf_bytes: r.take_usize()?,
        rw_bytes: r.take_usize()?,
    };
    let n_stages = r.take_count(4)?;
    let mut timings = StageTimings::default();
    for _ in 0..n_stages {
        let stage = r.take_str()?.to_owned();
        let wall = take_duration(r)?;
        let cpu = take_duration(r)?;
        let threads = r.take_usize()?;
        timings.push_with(stage, wall, cpu, threads);
    }
    let n_reports = r.take_count(4)?;
    let mut ingest = Vec::with_capacity(n_reports);
    for _ in 0..n_reports {
        let mut rep = IngestReport::new(r.take_str()?.to_owned());
        rep.rows_ingested = r.take_usize()?;
        rep.rows_ragged = r.take_usize()?;
        rep.cells_non_finite = r.take_usize()?;
        rep.cells_non_canonical = r.take_usize()?;
        rep.quote_repairs = r.take_usize()?;
        let n_sentinels = r.take_count(8)?;
        for _ in 0..n_sentinels {
            let sentinel = r.take_str()?.to_owned();
            let count = r.take_usize()?;
            rep.sentinel_census.insert(sentinel, count);
        }
        let n_issues = r.take_count(8)?;
        for _ in 0..n_issues {
            rep.issues.push(CellIssue {
                line: r.take_usize()?,
                column: r.take_usize()?,
                value: r.take_str()?.to_owned(),
                reason: issue_reason_from_tag(r.take_u8()?)?,
            });
        }
        rep.issues_total = r.take_usize()?;
        ingest.push(rep);
    }
    Ok(Meta {
        base_table,
        base_table_index,
        target_column,
        method_used,
        memory,
        timings,
        ingest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Leva;
    use leva_relational::{Database, IngestOptions, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "grp", "amount", "target"]);
        let mut aux = Table::new("aux", vec!["id", "tag"]);
        for i in 0..25 {
            base.push_row(vec![
                format!("e{i}").into(),
                ["a", "b", "c"][i % 3].into(),
                Value::Float(i as f64),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
            aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 4).into()])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        db
    }

    fn fit() -> LevaModel {
        Leva::with_config(LevaConfig::fast())
            .base_table("base")
            .target("target")
            .fit(&db())
            .unwrap()
    }

    fn assert_bitwise_equal_features(a: &LevaModel, b: &LevaModel) {
        for feat in [Featurization::RowOnly, Featurization::RowPlusValue] {
            let (xa, xb) = (a.featurize_base(feat), b.featurize_base(feat));
            assert_eq!(xa.rows(), xb.rows());
            assert_eq!(xa.cols(), xb.cols());
            for row in 0..xa.rows() {
                for (x, y) in xa.row(row).iter().zip(xb.row(row)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "featurize_base differs");
                }
            }
        }
        let mut test = Table::new("test", vec!["id", "grp", "amount"]);
        test.push_row(vec!["e3".into(), "a".into(), Value::Float(7.0)])
            .unwrap();
        test.push_row(vec!["unseen".into(), "c".into(), Value::Float(1e9)])
            .unwrap();
        let (xa, xb) = (
            a.featurize_external(&test, Featurization::RowPlusValue),
            b.featurize_external(&test, Featurization::RowPlusValue),
        );
        for row in 0..xa.rows() {
            for (x, y) in xa.row(row).iter().zip(xb.row(row)) {
                assert_eq!(x.to_bits(), y.to_bits(), "featurize_external differs");
            }
        }
    }

    #[test]
    fn round_trip_is_bitwise_identical() {
        let model = fit();
        let bytes = model.to_bytes();
        let back = LevaModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.base_table, model.base_table);
        assert_eq!(back.base_table_index, model.base_table_index);
        assert_eq!(back.target_column, model.target_column);
        assert_eq!(back.method_used, model.method_used);
        assert_eq!(back.memory, model.memory);
        assert_eq!(back.timings, model.timings);
        assert_eq!(back.store.len(), model.store.len());
        assert_eq!(back.graph.n_nodes(), model.graph.n_nodes());
        assert_bitwise_equal_features(&model, &back);
        // And re-serializing the loaded model reproduces the exact bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn file_round_trip() {
        let model = fit();
        let dir = std::env::temp_dir().join("leva_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.leva");
        model.save(&path).unwrap();
        let back = LevaModel::load(&path).unwrap();
        assert_bitwise_equal_features(&model, &back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_reports_survive() {
        let mut base = String::from("id,grp,target\n");
        for i in 0..30 {
            base.push_str(&format!("e{i},{},{}\n", ["a", "b"][i % 2], i % 2));
        }
        base.push_str("e0\n"); // ragged
        let model = Leva::with_config(LevaConfig::fast())
            .base_table("base")
            .target("target")
            .ingest_options(IngestOptions::lenient())
            .fit_csv(&[("base", &base)])
            .unwrap();
        let back = LevaModel::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(back.ingest.len(), 1);
        assert_eq!(back.ingest[0].rows_ragged, model.ingest[0].rows_ragged);
        assert_eq!(back.ingest[0].issues.len(), model.ingest[0].issues.len());
        assert_eq!(
            back.ingest[0].sentinel_census,
            model.ingest[0].sentinel_census
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let model = fit();
        let bytes = model.to_bytes();
        // Exhaustive over the header and chunk table, sampled past that.
        for cut in (0..bytes.len()).step_by(97).chain(0..64) {
            assert!(
                LevaModel::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let model = fit();
        let mut bytes = model.to_bytes();
        // Flipping any single bit must yield an error: headers are
        // validated, payload corruption trips the CRC. Sample every 131st
        // byte to keep runtime sane, plus the whole header region.
        let positions: Vec<usize> = (0..bytes.len())
            .step_by(131)
            .chain(0..32.min(bytes.len()))
            .collect();
        for pos in positions {
            for bit in 0..8 {
                bytes[pos] ^= 1 << bit;
                assert!(
                    LevaModel::from_bytes(&bytes).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
                bytes[pos] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let model = fit();
        let mut bytes = model.to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::UnsupportedVersion(99)
        ));
        assert!(matches!(
            LevaModel::from_bytes(b"NOPE").unwrap_err(),
            ArtifactError::BadMagic
        ));
    }

    #[test]
    fn inflated_chunk_length_is_bounded() {
        let model = fit();
        let mut bytes = model.to_bytes();
        // First chunk's u64 length field sits at offset 16 (magic 4 +
        // version 4 + count 4 + tag 4). Declare ~17 exabytes.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::Truncated
        ));
    }

    #[test]
    fn duplicate_and_trailing_chunks_are_rejected() {
        let model = fit();
        let bytes = model.to_bytes();
        // Append a copy of the first chunk without bumping the count:
        // trailing data.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            LevaModel::from_bytes(&trailing).unwrap_err(),
            ArtifactError::TrailingData
        ));
        // Unknown tag.
        let mut unknown = bytes.clone();
        unknown[12..16].copy_from_slice(b"WHAT");
        assert!(matches!(
            LevaModel::from_bytes(&unknown).unwrap_err(),
            ArtifactError::BadChunk { .. }
        ));
    }

    #[test]
    fn config_round_trips_every_field() {
        let mut cfg = LevaConfig::default()
            .with_dim(17)
            .with_seed(0xabcdef)
            .with_threads(3);
        cfg.method = EmbeddingMethod::Auto {
            memory_budget_bytes: 123_456,
        };
        cfg.textify.split_multiword = true;
        cfg.textify.histogram = HistogramChoice::ForceEquiDepth;
        cfg.walks.visit_limit = Some(42);
        cfg.featurization = Featurization::RowOnly;
        cfg.discovery.enabled = true;
        cfg.discovery.threshold = 0.85;
        cfg.discovery.min_distinct = 11;
        let mut w = ByteWriter::new();
        encode_config(&cfg, &mut w, ARTIFACT_VERSION);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_config(&mut r, ARTIFACT_VERSION).unwrap();
        assert!(r.is_exhausted());
        let mut w2 = ByteWriter::new();
        encode_config(&back, &mut w2, ARTIFACT_VERSION);
        assert_eq!(w2.into_bytes(), bytes, "config codec not a fixed point");
        assert_eq!(back.dim, 17);
        assert_eq!(back.walks.visit_limit, Some(42));
        assert_eq!(back.featurization, Featurization::RowOnly);
        assert!(back.discovery.enabled);
        assert_eq!(back.discovery.threshold, 0.85);
        assert_eq!(back.discovery.min_distinct, 11);
    }

    /// A fit with discovery enabled on a DB whose join is only reachable by
    /// content discovery (differently-named int key columns, no declared
    /// FKs): the discovered set and injection counters survive the round
    /// trip and the artifact is a byte-level fixed point.
    fn fit_with_discovery() -> LevaModel {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "machine_id", "target"]);
        for i in 0..30i64 {
            base.push_row(vec![
                format!("e{i}").into(),
                Value::Int(100 + i % 12),
                Value::Int(i % 2),
            ])
            .unwrap();
        }
        let mut machines = Table::new("machines", vec!["mid", "site"]);
        for i in 0..12i64 {
            machines
                .push_row(vec![
                    Value::Int(100 + i),
                    ["north", "south"][(i % 2) as usize].into(),
                ])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(machines).unwrap();
        let mut cfg = LevaConfig::fast();
        cfg.discovery.enabled = true;
        cfg.discovery.threshold = 0.5;
        Leva::with_config(cfg)
            .base_table("base")
            .target("target")
            .fit(&db)
            .unwrap()
    }

    #[test]
    fn discovery_round_trips_bitwise() {
        let model = fit_with_discovery();
        assert!(
            !model.discovered.is_empty(),
            "fixture DB has a shared id column to discover"
        );
        assert!(model.discovery_injection.edges_added > 0);
        let bytes = model.to_bytes();
        let back = LevaModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.discovered, model.discovered);
        assert_eq!(back.discovery_injection, model.discovery_injection);
        assert_eq!(back.to_bytes(), bytes, "save→load→save not a fixed point");
    }

    #[test]
    fn legacy_v1_artifacts_still_load() {
        let model = fit();
        let v1 = model.to_bytes_with_version(1);
        assert_eq!(v1[4], 1, "version byte");
        let back = LevaModel::from_bytes(&v1).unwrap();
        assert!(back.discovered.is_empty());
        assert_eq!(back.discovery_injection, Default::default());
        assert!(!back.config.discovery.enabled);
        assert_bitwise_equal_features(&model, &back);
        // Re-saving a legacy model upgrades it to the current version.
        let upgraded = back.to_bytes();
        assert_eq!(upgraded[4], ARTIFACT_VERSION as u8);
        LevaModel::from_bytes(&upgraded).unwrap();
    }

    #[test]
    fn disc_chunk_in_v1_artifact_is_rejected() {
        let model = fit();
        let mut bytes = model.to_bytes();
        // Downgrade the version header but keep the v2 chunk set: the DISC
        // chunk (and the CONF discovery fields) make it malformed.
        bytes[4] = 1;
        assert!(LevaModel::from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_disc_scores_are_rejected() {
        let model = fit_with_discovery();
        let base = model.to_bytes();
        let (start, len) = find_chunk(&base, TAG_DISC).expect("DISC chunk present");
        let needle = model.discovered[0].containment.to_le_bytes();
        let pos = start
            + base[start..start + len]
                .windows(8)
                .position(|w| w == needle)
                .expect("containment bytes present in DISC payload");
        for bad in [f64::NAN, f64::INFINITY, -0.25, 1.5] {
            let mut bytes = base.clone();
            bytes[pos..pos + 8].copy_from_slice(&bad.to_le_bytes());
            patch_disc_crc(&mut bytes);
            let err = LevaModel::from_bytes(&bytes).unwrap_err();
            assert!(
                matches!(err, ArtifactError::Decode { chunk: "DISC", .. }),
                "score {bad} gave {err}"
            );
        }
    }

    #[test]
    fn disc_phantom_references_are_inconsistent() {
        let model = fit_with_discovery();
        let mut bytes = model.to_bytes();
        // Same-length table-name swap inside the DISC chunk keeps every
        // length field valid while pointing at a phantom table.
        let (start, len) = find_chunk(&bytes, TAG_DISC).expect("DISC chunk present");
        let payload = &mut bytes[start..start + len];
        let from_table = model.discovered[0].from_table.as_bytes();
        let pos = payload
            .windows(from_table.len())
            .position(|w| w == from_table)
            .expect("table name in DISC payload");
        for b in &mut payload[pos..pos + from_table.len()] {
            *b = b'z';
        }
        patch_disc_crc(&mut bytes);
        assert!(matches!(
            LevaModel::from_bytes(&bytes).unwrap_err(),
            ArtifactError::Inconsistent { .. }
        ));
    }

    /// Byte offset and length of a chunk's payload within an artifact.
    fn find_chunk(bytes: &[u8], tag: [u8; 4]) -> Option<(usize, usize)> {
        let mut off = 12;
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        for _ in 0..count {
            let t: [u8; 4] = bytes[off..off + 4].try_into().unwrap();
            let len = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap()) as usize;
            let start = off + 16;
            if t == tag {
                return Some((start, len));
            }
            off = start + len;
        }
        None
    }

    /// Recomputes the DISC chunk's CRC after a test mutated its payload.
    fn patch_disc_crc(bytes: &mut [u8]) {
        let (start, len) = find_chunk(bytes, TAG_DISC).expect("DISC chunk present");
        let crc = crc32(&bytes[start..start + len]);
        bytes[start - 4..start].copy_from_slice(&crc.to_le_bytes());
    }
}
