//! The precomputed serving featurizer (DESIGN.md §6.11).
//!
//! Deployment featurization (§4.4) is the serving hot path, but the naive
//! implementation re-walks a two-hop graph traversal per featurized row:
//! for every value node `v` of the row it visits every related row `r ∈
//! N(v)` and every value node `v2 ∈ N(r)` — `O(Σ deg(v)·deg(r))` work per
//! row, repeated for every row of every batch.
//!
//! The [`Featurizer`] precomputes, once per model, dense per-value-node
//! caches indexed by `node_id - n_row_nodes`:
//!
//! * `val_contrib[v] = w_v · emb(v)` and `val_weight[v] = w_v` (zero when
//!   the token has no embedding), where `w_v = 1/deg(v)` is the same
//!   inverse-degree weight the naive walk uses — the value half of a row
//!   becomes a weighted mean of `O(#tokens)` cached vectors.
//! * `two_hop[v]` / `two_hop_weight[v]`: the *full* related-row sum the
//!   value node contributes when **no** row is excluded:
//!
//!   ```text
//!   two_hop[v] = w_v · Σ_{r ∈ N(v)} (1/deg(r)) · (rowsum[r] − w_v·emb(v))
//!   rowsum[r]  = Σ_{v' ∈ N(r)} w_{v'} · emb(v')      (embedded v' only)
//!   ```
//!
//!   The inner `− w_v·emb(v)` term is the naive walk's `v2 ≠ v` exclusion,
//!   hoisted out of the loop. `rowsum` is a transient build-time buffer.
//!
//! Featurizing a row is then `O(#tokens · d)` dense adds. The `skip_row`
//! self-exclusion (a training row must not see itself among its related
//! rows) becomes a cheap closed-form subtraction: the row's own
//! contribution through its value nodes is
//!
//! ```text
//! (1/deg(R)) · (W_V · v_acc − Σ_{v ∈ V} w_v · val_contrib[v])
//! ```
//!
//! where `V` is the row's value-node set, `W_V = Σ w_v`, and `v_acc` is the
//! (unnormalized) value half — all already available in the same pass.
//!
//! The cache build is `O(E·d)` — the cost of featurizing a couple of rows
//! naively — and both the build and the batch APIs shard rows over
//! contiguous bands via [`leva_linalg::for_each_row_band`], so results are
//! bitwise identical at any thread count. Cached and naive paths agree to
//! ~1e-15 per element (float reassociation only), which tests pin at 1e-12.

use crate::config::Featurization;
use leva_embedding::EmbeddingStore;
use leva_graph::LevaGraph;
use leva_linalg::for_each_row_band;
use std::time::{Duration, Instant};

/// Dense per-value-node deployment caches for a fitted model, making
/// per-row featurization `O(#tokens · d)` instead of a two-hop graph walk.
///
/// Built once per model (see `LevaModel::featurizer`) against a specific
/// graph + store pair; the caches mirror that pair and are not invalidated
/// by later mutation of the model's public fields.
#[derive(Debug)]
pub struct Featurizer {
    dim: usize,
    /// Value nodes occupy graph ids `n_row_nodes..`; cache slot = id − this.
    first_value_node: u32,
    /// `w_v = 1/max(deg(v), 1)` per value node (all value nodes).
    inv_degree: Vec<f64>,
    /// `w_v · emb(v)` per value node, zeros when the token has no embedding.
    val_contrib: Vec<f64>,
    /// `w_v` when `emb(v)` is present, else 0 (the value-half mass).
    val_weight: Vec<f64>,
    /// Full two-hop related-row sum contributed by each value node.
    two_hop: Vec<f64>,
    /// Weight mass of `two_hop` (drives the "any related row?" test).
    two_hop_weight: Vec<f64>,
    build_time: Duration,
}

impl Featurizer {
    /// Precomputes the deployment caches for `graph` + `store` in `O(E·d)`,
    /// sharding the two dense passes over `threads` row bands (bitwise
    /// identical at any thread count).
    pub fn build(graph: &LevaGraph, store: &EmbeddingStore, threads: usize) -> Featurizer {
        let start = Instant::now();
        let dim = store.dim();
        let n_rows = graph.n_row_nodes();
        let n_values = graph.n_value_nodes();
        let first_value_node = n_rows as u32;
        // Borrowed dense view: one lookup per graph node below, no store
        // indirection inside the banded loops.
        let view = store.dense_view();

        // Pass 1: per-value-node inverse degrees and weighted embeddings.
        let mut inv_degree = vec![0.0; n_values];
        let mut val_weight = vec![0.0; n_values];
        let mut val_contrib = vec![0.0; n_values * dim];
        for_each_row_band(&mut val_contrib, dim.max(1), threads, |slots, band| {
            for (offset, vi) in slots.enumerate() {
                let node = first_value_node + vi as u32;
                let w = 1.0 / graph.degree(node).max(1) as f64;
                if let Some(emb) = view.get(graph.token(node)) {
                    let out = &mut band[offset * dim..(offset + 1) * dim];
                    for (slot, &e) in out.iter_mut().zip(emb) {
                        *slot = w * e;
                    }
                }
            }
        });
        for (vi, (w_slot, m_slot)) in inv_degree.iter_mut().zip(&mut val_weight).enumerate() {
            let node = first_value_node + vi as u32;
            *w_slot = 1.0 / graph.degree(node).max(1) as f64;
            if view.get(graph.token(node)).is_some() {
                *m_slot = *w_slot;
            }
        }

        // Pass 2 (transient): per-row sums of the weighted value embeddings.
        let value_slot = |v: u32| -> Option<usize> {
            let vi = v.checked_sub(first_value_node)? as usize;
            (vi < n_values).then_some(vi)
        };
        let mut rowsum = vec![0.0; n_rows * dim];
        for_each_row_band(&mut rowsum, dim.max(1), threads, |rows, band| {
            for (offset, r) in rows.enumerate() {
                let out = &mut band[offset * dim..(offset + 1) * dim];
                for &(v, _) in graph.neighbors(r as u32) {
                    let Some(vi) = value_slot(v) else { continue };
                    for (o, &c) in out.iter_mut().zip(&val_contrib[vi * dim..(vi + 1) * dim]) {
                        *o += c;
                    }
                }
            }
        });
        let mut row_weight = vec![0.0; n_rows];
        for (r, mass) in row_weight.iter_mut().enumerate() {
            for &(v, _) in graph.neighbors(r as u32) {
                if let Some(vi) = value_slot(v) {
                    *mass += val_weight[vi];
                }
            }
        }

        // Pass 3: fold the row sums into per-value-node two-hop caches,
        // subtracting each value node's own echo (the naive `v2 ≠ v` test).
        let mut two_hop = vec![0.0; n_values * dim];
        for_each_row_band(&mut two_hop, dim.max(1), threads, |slots, band| {
            for (offset, vi) in slots.enumerate() {
                let node = first_value_node + vi as u32;
                let w = inv_degree[vi];
                let out = &mut band[offset * dim..(offset + 1) * dim];
                let mut inv_row_degrees = 0.0;
                for &(r, _) in graph.neighbors(node) {
                    if r >= first_value_node {
                        continue; // defensive: a non-bipartite edge
                    }
                    let wr = 1.0 / graph.degree(r).max(1) as f64;
                    inv_row_degrees += wr;
                    let r = r as usize;
                    for (o, &s) in out.iter_mut().zip(&rowsum[r * dim..(r + 1) * dim]) {
                        *o += wr * s;
                    }
                }
                let own = &val_contrib[vi * dim..(vi + 1) * dim];
                for (o, &c) in out.iter_mut().zip(own) {
                    *o = w * *o - w * inv_row_degrees * c;
                }
            }
        });
        let mut two_hop_weight = vec![0.0; n_values];
        for (vi, mass) in two_hop_weight.iter_mut().enumerate() {
            let node = first_value_node + vi as u32;
            let w = inv_degree[vi];
            let mut acc = 0.0;
            let mut inv_row_degrees = 0.0;
            for &(r, _) in graph.neighbors(node) {
                if r >= first_value_node {
                    continue;
                }
                let wr = 1.0 / graph.degree(r).max(1) as f64;
                inv_row_degrees += wr;
                acc += wr * row_weight[r as usize];
            }
            *mass = w * acc - w * inv_row_degrees * val_weight[vi];
        }

        Featurizer {
            dim,
            first_value_node,
            inv_degree,
            val_contrib,
            val_weight,
            two_hop,
            two_hop_weight,
            build_time: start.elapsed(),
        }
    }

    /// Embedding dimensionality of the underlying store.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Wall time spent building the caches.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Estimated heap bytes of the dense caches.
    pub fn estimated_bytes(&self) -> usize {
        (self.inv_degree.len()
            + self.val_contrib.len()
            + self.val_weight.len()
            + self.two_hop.len()
            + self.two_hop_weight.len())
            * std::mem::size_of::<f64>()
    }

    /// Featurizes one row — given as its value-node set `value_nodes` —
    /// into `out_row` (`dim` wide for [`Featurization::RowOnly`], `2·dim`
    /// for [`Featurization::RowPlusValue`]; must arrive zeroed).
    ///
    /// `skip_row` excludes a training row's own node from its related-row
    /// half via the cached-subtraction identity (see the module docs);
    /// external rows pass `None` and get the full cached two-hop sums.
    /// Value nodes outside the cache (a foreign graph) contribute nothing.
    pub fn accumulate<I>(
        &self,
        graph: &LevaGraph,
        value_nodes: I,
        skip_row: Option<u32>,
        out_row: &mut [f64],
        feat: Featurization,
    ) where
        I: IntoIterator<Item = u32>,
    {
        let dim = self.dim;
        let related = feat == Featurization::RowPlusValue;
        // Weight of the skipped row's echo in the related-row half.
        let skip_w = skip_row.map(|r| {
            let deg = graph.try_neighbors(r).map_or(0, <[_]>::len);
            1.0 / deg.max(1) as f64
        });
        let mut v_weight = 0.0;
        let mut x_weight = 0.0;
        let mut value_mass = 0.0; // W_V = Σ w_v over *all* value nodes of the row
        for v in value_nodes {
            let Some(vi) = v
                .checked_sub(self.first_value_node)
                .map(|i| i as usize)
                .filter(|&i| i < self.inv_degree.len())
            else {
                continue;
            };
            let contrib = &self.val_contrib[vi * dim..(vi + 1) * dim];
            for (o, &c) in out_row[..dim].iter_mut().zip(contrib) {
                *o += c;
            }
            v_weight += self.val_weight[vi];
            if related {
                let cached = &self.two_hop[vi * dim..(vi + 1) * dim];
                let out = &mut out_row[dim..];
                match skip_w {
                    // Σ (two_hop[v] + skip_w·w_v·val_contrib[v]): the
                    // second term restores the part of the row's own echo
                    // that the per-value caches already subtracted as the
                    // `v2 = v` exclusion — without it the echo would be
                    // removed twice once the W_V·v_acc term comes off below.
                    Some(sw) => {
                        let w = self.inv_degree[vi];
                        value_mass += w;
                        for ((o, &t), &c) in out.iter_mut().zip(cached).zip(contrib) {
                            *o += t + sw * w * c;
                        }
                        x_weight += self.two_hop_weight[vi] + sw * w * self.val_weight[vi];
                    }
                    None => {
                        for (o, &t) in out.iter_mut().zip(cached) {
                            *o += t;
                        }
                        x_weight += self.two_hop_weight[vi];
                    }
                }
            }
        }
        if related {
            if let Some(sw) = skip_w {
                // Subtract the skipped row's full echo: through each of its
                // value nodes v it would contribute (w_v/deg(R))·rowsum(R),
                // and Σ_v w_v·rowsum(R) = W_V·v_acc with v_acc still raw in
                // the value half.
                let (value_half, related_half) = out_row.split_at_mut(dim);
                for (o, &a) in related_half.iter_mut().zip(value_half.iter()) {
                    *o -= sw * value_mass * a;
                }
                x_weight -= sw * value_mass * v_weight;
            }
            // Mirror the naive walk: a related-row half with no (or only
            // cancelled) mass stays the zero vector.
            if x_weight <= 0.0 {
                out_row[dim..].fill(0.0);
            }
        }
        if v_weight > 0.0 {
            for o in &mut out_row[..dim] {
                *o /= v_weight;
            }
        } else {
            out_row[..dim].fill(0.0);
        }
    }
}
