//! The precomputed serving featurizer (DESIGN.md §6.11).
//!
//! Deployment featurization (§4.4) is the serving hot path, but the naive
//! implementation re-walks a two-hop graph traversal per featurized row:
//! for every value node `v` of the row it visits every related row `r ∈
//! N(v)` and every value node `v2 ∈ N(r)` — `O(Σ deg(v)·deg(r))` work per
//! row, repeated for every row of every batch.
//!
//! The walk is *edge-weighted*: the graph stores `w(u, v) = conf / deg(v)`
//! on both directions of every row↔value edge, where `conf` is 1 for
//! organic edges and the discovery confidence (< 1) for injected ones
//! (§3.2 + DESIGN.md §6.13). Hop 1 uses the stored weight `w1 = w(R, v)`
//! directly; hop 2 recovers the confidence as `conf = w(v, r) · deg(v)` and
//! steps with `w1 · conf / deg(r)`; hop 3 again uses the stored
//! `w(r, v2)`. For a purely organic graph every stored weight is bitwise
//! `1/deg(value)` and the weighted walk coincides with the classic
//! inverse-degree walk.
//!
//! The [`Featurizer`] precomputes, once per model, dense per-value-node
//! caches indexed by `node_id - n_row_nodes`:
//!
//! * `val_contrib[v] = emb(v)` (zeros when the token has no embedding) and
//!   `val_weight[v] ∈ {0, 1}` (embedding present?). Hop-1 weights vary per
//!   *edge* now, so they are applied at accumulation time rather than
//!   folded into the cache: the value half of a row is
//!   `Σ w1 · val_contrib[v] / Σ w1 · val_weight[v]`.
//! * `two_hop[v]` / `two_hop_weight[v]`: the *full* related-row sum the
//!   value node contributes per unit of hop-1 weight when **no** row is
//!   excluded:
//!
//!   ```text
//!   two_hop[v] = deg(v) · Σ_{(r, wᵥᵣ) ∈ N(v)} (wᵥᵣ/deg(r)) · rowsum[r]
//!              − deg(v) · (Σ wᵥᵣ²/deg(r)) · val_contrib[v]
//!   rowsum[r]  = Σ_{(v', w') ∈ N(r)} w' · emb(v')    (embedded v' only)
//!   ```
//!
//!   The second term is the naive walk's `v2 ≠ v` exclusion, hoisted out of
//!   the loop (the reverse edge stores the same `conf/deg(v)` value, so the
//!   echo of `v` through `r` carries weight `wᵥᵣ²·deg(v)/deg(r)`). `rowsum`
//!   is a transient build-time buffer. Accumulation adds `w1 · two_hop[v]`.
//!
//! Featurizing a row is then `O(#tokens · d)` dense adds. The `skip_row`
//! self-exclusion (a training row must not see itself among its related
//! rows) stays a closed-form subtraction: through each of its value nodes
//! `v` the skipped row `R` echoes `(w1²·deg(v)/deg(R)) · (rowsum[R] −
//! w1·emb(v))`, and `rowsum[R]` is exactly the raw value half `v_acc`
//! already accumulated in the same pass — so the related half subtracts
//! `(M₂/deg(R)) · v_acc` with `M₂ = Σ_v w1²·deg(v)`, after restoring each
//! value node's own `w1³·deg(v)/deg(R) · val_contrib[v]` echo term.
//!
//! The cache build is `O(E·d)` — the cost of featurizing a couple of rows
//! naively — and both the build and the batch APIs shard rows over
//! contiguous bands via [`leva_linalg::for_each_row_band`], so results are
//! bitwise identical at any thread count. Cached and naive paths agree to
//! ~1e-15 per element (float reassociation only), which tests pin at 1e-12.
//!
//! **Precision ladder** (DESIGN.md §6.14): at reduced
//! [`Precision`](leva_embedding::Precision) the build reads embeddings
//! through a [`QuantizedStore`](leva_embedding::QuantizedStore) snapshot
//! instead of the f64 store — the caches themselves stay f64, so serving
//! arithmetic is unchanged and only the embedded coordinates carry the
//! documented per-element quantization error.

use crate::config::Featurization;
use leva_embedding::{EmbeddingStore, Precision, QuantizedStore};
use leva_graph::LevaGraph;
use leva_linalg::for_each_row_band;
use std::time::{Duration, Instant};

/// Dense per-value-node deployment caches for a fitted model, making
/// per-row featurization `O(#tokens · d)` instead of a two-hop graph walk.
///
/// Built once per model (see `LevaModel::featurizer`) against a specific
/// graph + store pair; the caches mirror that pair and are not invalidated
/// by later mutation of the model's public fields.
#[derive(Debug, Clone)]
pub struct Featurizer {
    dim: usize,
    /// Value nodes occupy graph ids `n_row_nodes..`; cache slot = id − this.
    first_value_node: u32,
    /// `max(deg(v), 1)` per value node, as f64 (echo-term factor).
    degree: Vec<f64>,
    /// `emb(v)` per value node, zeros when the token has no embedding.
    val_contrib: Vec<f64>,
    /// 1 when `emb(v)` is present, else 0 (the value-half presence mass).
    val_weight: Vec<f64>,
    /// Per-unit-hop-1-weight two-hop related-row sum of each value node.
    two_hop: Vec<f64>,
    /// Weight mass of `two_hop` (drives the "any related row?" test).
    two_hop_weight: Vec<f64>,
    build_time: Duration,
}

impl Featurizer {
    /// Precomputes the deployment caches for `graph` + `store` in `O(E·d)`
    /// at full f64 precision, sharding the dense passes over `threads` row
    /// bands (bitwise identical at any thread count).
    pub fn build(graph: &LevaGraph, store: &EmbeddingStore, threads: usize) -> Featurizer {
        Self::build_with_precision(graph, store, threads, Precision::F64)
    }

    /// Like [`Featurizer::build`], but at reduced `precision` the embedding
    /// coordinates are read through a [`QuantizedStore`] snapshot (f32 or
    /// int8), bounding cache memory traffic during the build; the caches
    /// themselves stay f64.
    pub fn build_with_precision(
        graph: &LevaGraph,
        store: &EmbeddingStore,
        threads: usize,
        precision: Precision,
    ) -> Featurizer {
        let start = Instant::now();
        let dim = store.dim();
        let n_rows = graph.n_row_nodes();
        let n_values = graph.n_value_nodes();
        let first_value_node = n_rows as u32;
        // Borrowed dense view: one lookup per graph node below, no store
        // indirection inside the banded loops.
        let view = store.dense_view();
        let quantized = match precision {
            Precision::F64 => None,
            reduced => Some(QuantizedStore::quantize(store, reduced)),
        };

        // Pass 1: per-value-node degrees and raw (or dequantized) embeddings.
        let mut degree = vec![0.0; n_values];
        let mut val_weight = vec![0.0; n_values];
        let mut val_contrib = vec![0.0; n_values * dim];
        for_each_row_band(&mut val_contrib, dim.max(1), threads, |slots, band| {
            for (offset, vi) in slots.enumerate() {
                let node = first_value_node + vi as u32;
                let token = graph.token(node);
                let out = &mut band[offset * dim..(offset + 1) * dim];
                match &quantized {
                    Some(q) => {
                        q.dequantize_into(token, out);
                    }
                    None => {
                        if let Some(emb) = view.get(token) {
                            out.copy_from_slice(emb);
                        }
                    }
                }
            }
        });
        for (vi, (d_slot, m_slot)) in degree.iter_mut().zip(&mut val_weight).enumerate() {
            let node = first_value_node + vi as u32;
            *d_slot = graph.degree(node).max(1) as f64;
            if view.get(graph.token(node)).is_some() {
                *m_slot = 1.0;
            }
        }

        // Pass 2 (transient): per-row weighted sums of the value embeddings,
        // using the stored (confidence-bearing) edge weights.
        let value_slot = |v: u32| -> Option<usize> {
            let vi = v.checked_sub(first_value_node)? as usize;
            (vi < n_values).then_some(vi)
        };
        let mut rowsum = vec![0.0; n_rows * dim];
        for_each_row_band(&mut rowsum, dim.max(1), threads, |rows, band| {
            for (offset, r) in rows.enumerate() {
                let out = &mut band[offset * dim..(offset + 1) * dim];
                for (v, w) in graph.neighbors(r as u32) {
                    let Some(vi) = value_slot(v) else { continue };
                    for (o, &c) in out.iter_mut().zip(&val_contrib[vi * dim..(vi + 1) * dim]) {
                        *o += w * c;
                    }
                }
            }
        });
        let mut row_weight = vec![0.0; n_rows];
        for (r, mass) in row_weight.iter_mut().enumerate() {
            for (v, w) in graph.neighbors(r as u32) {
                if let Some(vi) = value_slot(v) {
                    *mass += w * val_weight[vi];
                }
            }
        }

        // Pass 3: fold the row sums into per-value-node two-hop caches,
        // subtracting each value node's own echo (the naive `v2 ≠ v` test).
        // Hop-1 weights are per-edge, so the caches are normalized per unit
        // of hop-1 weight; accumulation rescales by the actual `w1`.
        let mut two_hop = vec![0.0; n_values * dim];
        for_each_row_band(&mut two_hop, dim.max(1), threads, |slots, band| {
            for (offset, vi) in slots.enumerate() {
                let node = first_value_node + vi as u32;
                let dv = degree[vi];
                let out = &mut band[offset * dim..(offset + 1) * dim];
                let mut echo_mass = 0.0; // Σ wᵥᵣ²/deg(r)
                for (r, wvr) in graph.neighbors(node) {
                    if r >= first_value_node {
                        continue; // defensive: a non-bipartite edge
                    }
                    let inv_r = 1.0 / graph.degree(r).max(1) as f64;
                    echo_mass += wvr * wvr * inv_r;
                    let wr = wvr * inv_r;
                    let r = r as usize;
                    for (o, &s) in out.iter_mut().zip(&rowsum[r * dim..(r + 1) * dim]) {
                        *o += wr * s;
                    }
                }
                let own = &val_contrib[vi * dim..(vi + 1) * dim];
                for (o, &c) in out.iter_mut().zip(own) {
                    *o = dv * *o - dv * echo_mass * c;
                }
            }
        });
        let mut two_hop_weight = vec![0.0; n_values];
        for (vi, mass) in two_hop_weight.iter_mut().enumerate() {
            let node = first_value_node + vi as u32;
            let dv = degree[vi];
            let mut acc = 0.0;
            let mut echo_mass = 0.0;
            for (r, wvr) in graph.neighbors(node) {
                if r >= first_value_node {
                    continue;
                }
                let inv_r = 1.0 / graph.degree(r).max(1) as f64;
                echo_mass += wvr * wvr * inv_r;
                acc += wvr * inv_r * row_weight[r as usize];
            }
            *mass = dv * acc - dv * echo_mass * val_weight[vi];
        }

        Featurizer {
            dim,
            first_value_node,
            degree,
            val_contrib,
            val_weight,
            two_hop,
            two_hop_weight,
            build_time: start.elapsed(),
        }
    }

    /// Patches the caches in place after a delta append instead of a full
    /// rebuild: only the `changed_values` slots are recomputed (plus new
    /// slots appended for value nodes the patch created), everything else
    /// is carried over untouched.
    ///
    /// `graph` and `store` are the *post-append* pair; `changed_values` are
    /// post-append value-node ids and must cover every node whose cache
    /// entry could differ: values with changed adjacency or embedding, and
    /// values adjacent to any row whose edges or neighbor embeddings
    /// changed (the two-hop caches read those rows' sums). The recompute
    /// follows the exact accumulation order of [`Featurizer::build`], so a
    /// patched cache matches a freshly built one on every slot (pinned at
    /// ≤1e-12 by the regression tests; only f64 coordinates are supported —
    /// reduced-precision featurizers are rebuilt instead, see
    /// `LevaModel::append_rows`).
    pub fn patch(&mut self, graph: &LevaGraph, store: &EmbeddingStore, changed_values: &[u32]) {
        let start = Instant::now();
        let dim = self.dim;
        let n_values = graph.n_value_nodes();
        self.first_value_node = graph.n_row_nodes() as u32;
        let first = self.first_value_node;
        self.degree.resize(n_values, 0.0);
        self.val_weight.resize(n_values, 0.0);
        self.val_contrib.resize(n_values * dim, 0.0);
        self.two_hop.resize(n_values * dim, 0.0);
        self.two_hop_weight.resize(n_values, 0.0);

        let mut slots: Vec<usize> = changed_values
            .iter()
            .filter_map(|&v| v.checked_sub(first).map(|i| i as usize))
            .filter(|&i| i < n_values)
            .collect();
        slots.sort_unstable();
        slots.dedup();

        // Pass 1 (changed slots only): degree, embedding, presence.
        let view = store.dense_view();
        for &vi in &slots {
            let node = first + vi as u32;
            let out = &mut self.val_contrib[vi * dim..(vi + 1) * dim];
            out.fill(0.0);
            if let Some(emb) = view.get(graph.token(node)) {
                out.copy_from_slice(emb);
                self.val_weight[vi] = 1.0;
            } else {
                self.val_weight[vi] = 0.0;
            }
            self.degree[vi] = graph.degree(node).max(1) as f64;
        }

        // Pass 3 (changed slots only), with each neighbor row's transient
        // sums recomputed on the fly in the same CSR order pass 2 uses —
        // the add sequence per slot is identical to a full build's.
        let value_slot = |v: u32| -> Option<usize> {
            let vi = v.checked_sub(first)? as usize;
            (vi < n_values).then_some(vi)
        };
        let mut rowsum = vec![0.0f64; dim];
        let mut acc = vec![0.0f64; dim];
        for &vi in &slots {
            let node = first + vi as u32;
            let dv = self.degree[vi];
            acc.fill(0.0);
            let mut echo_mass = 0.0;
            let mut mass_acc = 0.0;
            for (r, wvr) in graph.neighbors(node) {
                if r >= first {
                    continue; // defensive: a non-bipartite edge
                }
                rowsum.fill(0.0);
                let mut row_w = 0.0;
                for (v2, w2) in graph.neighbors(r) {
                    let Some(v2i) = value_slot(v2) else { continue };
                    let contrib = &self.val_contrib[v2i * dim..(v2i + 1) * dim];
                    for (o, &c) in rowsum.iter_mut().zip(contrib) {
                        *o += w2 * c;
                    }
                    row_w += w2 * self.val_weight[v2i];
                }
                let inv_r = 1.0 / graph.degree(r).max(1) as f64;
                echo_mass += wvr * wvr * inv_r;
                let wr = wvr * inv_r;
                for (o, &s) in acc.iter_mut().zip(&rowsum) {
                    *o += wr * s;
                }
                mass_acc += wvr * inv_r * row_w;
            }
            let own = &self.val_contrib[vi * dim..(vi + 1) * dim];
            let out_iter = acc.iter().zip(own);
            let two_hop = &mut self.two_hop[vi * dim..(vi + 1) * dim];
            for (o, (&a, &c)) in two_hop.iter_mut().zip(out_iter) {
                *o = dv * a - dv * echo_mass * c;
            }
            self.two_hop_weight[vi] = dv * mass_acc - dv * echo_mass * self.val_weight[vi];
        }
        self.build_time += start.elapsed();
    }

    /// Embedding dimensionality of the underlying store.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Wall time spent building the caches.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Estimated heap bytes of the dense caches.
    pub fn estimated_bytes(&self) -> usize {
        (self.degree.len()
            + self.val_contrib.len()
            + self.val_weight.len()
            + self.two_hop.len()
            + self.two_hop_weight.len())
            * std::mem::size_of::<f64>()
    }

    /// Featurizes one row — given as `(value_node, hop-1 weight)` pairs —
    /// into `out_row` (`dim` wide for [`Featurization::RowOnly`], `2·dim`
    /// for [`Featurization::RowPlusValue`]; must arrive zeroed).
    ///
    /// In-graph rows pass their adjacency pairs verbatim (the stored weight
    /// *is* the hop-1 weight, carrying the edge's discovery confidence);
    /// external rows pass `(v, 1/deg(v))` — the stored-weight value an
    /// organic unit-confidence edge would have.
    ///
    /// `skip_row` excludes a training row's own node from its related-row
    /// half via the cached-subtraction identity (see the module docs);
    /// external rows pass `None` and get the full cached two-hop sums.
    /// Value nodes outside the cache (a foreign graph) contribute nothing.
    pub fn accumulate<I>(
        &self,
        graph: &LevaGraph,
        value_nodes: I,
        skip_row: Option<u32>,
        out_row: &mut [f64],
        feat: Featurization,
    ) where
        I: IntoIterator<Item = (u32, f64)>,
    {
        let dim = self.dim;
        let related = feat == Featurization::RowPlusValue;
        // Inverse degree of the skipped row (its echo normalizer).
        let skip_w = skip_row.map(|r| {
            let deg = graph.try_neighbors(r).map_or(0, |n| n.len());
            1.0 / deg.max(1) as f64
        });
        let mut v_weight = 0.0;
        let mut x_weight = 0.0;
        let mut echo_m2 = 0.0; // M₂ = Σ w1²·deg(v) over the row's value nodes
        for (v, w1) in value_nodes {
            let Some(vi) = v
                .checked_sub(self.first_value_node)
                .map(|i| i as usize)
                .filter(|&i| i < self.degree.len())
            else {
                continue;
            };
            let contrib = &self.val_contrib[vi * dim..(vi + 1) * dim];
            for (o, &c) in out_row[..dim].iter_mut().zip(contrib) {
                *o += w1 * c;
            }
            v_weight += w1 * self.val_weight[vi];
            if related {
                let cached = &self.two_hop[vi * dim..(vi + 1) * dim];
                let out = &mut out_row[dim..];
                match skip_w {
                    // Σ (w1·two_hop[v] + sd·w1³·deg(v)·val_contrib[v]): the
                    // second term restores the part of the row's own echo
                    // that the per-value caches already subtracted as the
                    // `v2 = v` exclusion — without it the echo would be
                    // removed twice once the M₂·v_acc term comes off below.
                    Some(sd) => {
                        let dv = self.degree[vi];
                        echo_m2 += w1 * w1 * dv;
                        let echo = sd * w1 * w1 * w1 * dv;
                        for ((o, &t), &c) in out.iter_mut().zip(cached).zip(contrib) {
                            *o += w1 * t + echo * c;
                        }
                        x_weight += w1 * self.two_hop_weight[vi] + echo * self.val_weight[vi];
                    }
                    None => {
                        for (o, &t) in out.iter_mut().zip(cached) {
                            *o += w1 * t;
                        }
                        x_weight += w1 * self.two_hop_weight[vi];
                    }
                }
            }
        }
        if related {
            if let Some(sd) = skip_w {
                // Subtract the skipped row's full echo: through each of its
                // value nodes v it would contribute
                // (w1²·deg(v)/deg(R))·rowsum(R), and rowsum(R) = Σ w1·emb(v)
                // is exactly v_acc, still raw in the value half.
                let (value_half, related_half) = out_row.split_at_mut(dim);
                for (o, &a) in related_half.iter_mut().zip(value_half.iter()) {
                    *o -= sd * echo_m2 * a;
                }
                x_weight -= sd * echo_m2 * v_weight;
            }
            // Mirror the naive walk: a related-row half with no (or only
            // cancelled) mass stays the zero vector.
            if x_weight <= 0.0 {
                out_row[dim..].fill(0.0);
            }
        }
        if v_weight > 0.0 {
            for o in &mut out_row[..dim] {
                *o /= v_weight;
            }
        } else {
            out_row[..dim].fill(0.0);
        }
    }
}
