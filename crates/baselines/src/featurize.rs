//! One-hot / standardized featurization of relational tables — the
//! conventional encoding used by the Base, Full, Full+FE, and Disc
//! baselines (and contrasted with Leva's embedding featurization).

use leva_linalg::Matrix;
use leva_relational::{Column, DataType, Table};
use std::collections::HashMap;

/// Per-column encoding fitted on training data.
#[derive(Debug, Clone)]
enum ColumnFeaturizer {
    /// Standardized numeric column.
    Numeric { mean: f64, std: f64 },
    /// One-hot over the most frequent categories (unseen ⇒ all-zero block).
    Categorical {
        index: HashMap<String, usize>,
        width: usize,
    },
    /// Column skipped (empty or excluded).
    Skip,
}

/// Featurizer for a table schema: numeric columns standardize, categorical
/// columns one-hot encode (capped at `max_categories` most frequent values).
#[derive(Debug, Clone)]
pub struct TableFeaturizer {
    columns: Vec<(String, ColumnFeaturizer)>,
    width: usize,
}

impl TableFeaturizer {
    /// Fits on a training table, excluding the named columns (target, ids).
    pub fn fit(table: &Table, exclude: &[&str], max_categories: usize) -> TableFeaturizer {
        let mut columns = Vec::new();
        let mut width = 0usize;
        for col in table.columns() {
            if exclude.contains(&col.name()) {
                columns.push((col.name().to_owned(), ColumnFeaturizer::Skip));
                continue;
            }
            let f = fit_column(col, max_categories);
            width += match &f {
                ColumnFeaturizer::Numeric { .. } => 1,
                ColumnFeaturizer::Categorical { width, .. } => *width,
                ColumnFeaturizer::Skip => 0,
            };
            columns.push((col.name().to_owned(), f));
        }
        TableFeaturizer { columns, width }
    }

    /// Total feature width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Transforms a table with the same schema into a feature matrix.
    /// Columns are matched by name; missing columns contribute zeros.
    pub fn transform(&self, table: &Table) -> Matrix {
        let n = table.row_count();
        let mut out = Matrix::zeros(n, self.width);
        let mut offset = 0usize;
        for (name, f) in &self.columns {
            let col = table.column(name).ok();
            match f {
                ColumnFeaturizer::Skip => {}
                ColumnFeaturizer::Numeric { mean, std } => {
                    if let Some(col) = col {
                        for r in 0..n {
                            if let Some(v) = col.get(r).and_then(|v| v.as_f64()) {
                                out[(r, offset)] = (v - mean) / std;
                            }
                        }
                    }
                    offset += 1;
                }
                ColumnFeaturizer::Categorical { index, width } => {
                    if let Some(col) = col {
                        for r in 0..n {
                            if let Some(v) = col.get(r) {
                                if !v.is_null() {
                                    if let Some(&slot) = index.get(&v.render().to_lowercase()) {
                                        out[(r, offset + slot)] = 1.0;
                                    }
                                }
                            }
                        }
                    }
                    offset += width;
                }
            }
        }
        out
    }
}

fn fit_column(col: &Column, max_categories: usize) -> ColumnFeaturizer {
    match col.infer_type() {
        DataType::Int | DataType::Float | DataType::Timestamp => {
            let vals: Vec<f64> = col.numeric_values().collect();
            if vals.is_empty() {
                return ColumnFeaturizer::Skip;
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let mut std =
                (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
            if std < 1e-12 {
                std = 1.0;
            }
            ColumnFeaturizer::Numeric { mean, std }
        }
        DataType::Text | DataType::Bool => {
            let mut counts: HashMap<String, usize> = HashMap::new();
            for v in col.values() {
                if !v.is_null() {
                    *counts.entry(v.render().to_lowercase()).or_insert(0) += 1;
                }
            }
            if counts.is_empty() {
                return ColumnFeaturizer::Skip;
            }
            let mut ordered: Vec<(String, usize)> = counts.into_iter().collect();
            ordered.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ordered.truncate(max_categories);
            let index: HashMap<String, usize> = ordered
                .into_iter()
                .enumerate()
                .map(|(i, (v, _))| (v, i))
                .collect();
            let width = index.len();
            ColumnFeaturizer::Categorical { index, width }
        }
        DataType::Unknown => ColumnFeaturizer::Skip,
    }
}

/// Extracts a target vector from a table column. Classification targets are
/// mapped through a deterministic label index (sorted distinct rendered
/// values); regression targets use the numeric value (nulls ⇒ 0.0).
pub fn target_vector(table: &Table, target: &str, classification: bool) -> (Vec<f64>, usize) {
    let col = table.column(target).expect("target column exists");
    if classification {
        let mut labels: Vec<String> = col
            .values()
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| v.render())
            .collect();
        labels.sort();
        labels.dedup();
        let index: HashMap<&String, usize> =
            labels.iter().enumerate().map(|(i, l)| (l, i)).collect();
        let y = col
            .values()
            .iter()
            .map(|v| index.get(&v.render()).copied().unwrap_or(0) as f64)
            .collect();
        (y, labels.len().max(2))
    } else {
        let y = col
            .values()
            .iter()
            .map(|v| v.as_f64().unwrap_or(0.0))
            .collect();
        (y, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Value;

    fn table() -> Table {
        let mut t = Table::new("t", vec!["id", "city", "amount", "label"]);
        for i in 0..10 {
            t.push_row(vec![
                format!("id{i}").into(),
                ["nyc", "sfo", "chi"][i % 3].into(),
                Value::Float(i as f64 * 10.0),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn width_counts_onehot_blocks() {
        let f = TableFeaturizer::fit(&table(), &["label"], 30);
        // id: 10 categories, city: 3, amount: 1 numeric.
        assert_eq!(f.width(), 10 + 3 + 1);
    }

    #[test]
    fn category_cap_applies() {
        let f = TableFeaturizer::fit(&table(), &["label"], 2);
        assert_eq!(f.width(), 2 + 2 + 1);
    }

    #[test]
    fn transform_onehot_and_standardize() {
        let t = table();
        let f = TableFeaturizer::fit(&t, &["label", "id"], 30);
        let x = f.transform(&t);
        assert_eq!(x.cols(), 4); // 3 cities + amount
                                 // Exactly one city bit set per row.
        for r in 0..10 {
            let bits: f64 = x.row(r)[..3].iter().sum();
            assert_eq!(bits, 1.0);
        }
        // Standardized numeric column has ~zero mean.
        let mean: f64 = (0..10).map(|r| x[(r, 3)]).sum::<f64>() / 10.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn unseen_categories_are_zero() {
        let t = table();
        let f = TableFeaturizer::fit(&t, &["label", "id", "amount"], 30);
        let mut test = Table::new("t", vec!["id", "city", "amount", "label"]);
        test.push_row(vec![
            "idx".into(),
            "tokyo".into(),
            Value::Float(0.0),
            Value::Int(0),
        ])
        .unwrap();
        let x = f.transform(&test);
        assert!(x.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn missing_column_contributes_zeros() {
        let t = table();
        let f = TableFeaturizer::fit(&t, &["label"], 30);
        let mut partial = Table::new("t", vec!["city"]);
        partial.push_row(vec!["nyc".into()]).unwrap();
        let x = f.transform(&partial);
        assert_eq!(x.cols(), f.width());
        assert_eq!(x.row(0).iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn target_vectors() {
        let t = table();
        let (y, k) = target_vector(&t, "label", true);
        assert_eq!(k, 2);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[1], 1.0);
        let (yr, kr) = target_vector(&t, "amount", false);
        assert_eq!(kr, 1);
        assert_eq!(yr[3], 30.0);
    }
}
