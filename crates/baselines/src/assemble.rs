//! Training-table assembly for the oracle baselines.
//!
//! * **Base**: the base table alone (§2.1).
//! * **Full**: the base table augmented with every table reachable through
//!   the *declared* (ground-truth) KFK graph — the table a diligent analyst
//!   with perfect schema knowledge would build (§2.2), with join
//!   cardinalities handled by aggregation so the row distribution of the
//!   base table is preserved.
//!
//! The Disc baseline reuses the same assembly over *discovered* joins (see
//! `discovery`).

use leva_relational::{augment_join, Database, ForeignKey, Result, Table};
use std::collections::HashMap;

/// Returns the base table as the training table (the Base baseline).
pub fn assemble_base(db: &Database, base_table: &str) -> Result<Table> {
    Ok(db.table(base_table)?.clone())
}

/// Assembles the Full table: BFS over `fks` starting from the base table,
/// augmenting each newly reachable table onto the accumulated result with a
/// cardinality-preserving join. Each table is joined at most once.
pub fn assemble_joined(db: &Database, base_table: &str, fks: &[ForeignKey]) -> Result<Table> {
    let mut result = db.table(base_table)?.clone();
    // Where each (table, column) currently lives in `result`.
    let mut column_map: HashMap<(String, String), String> = HashMap::new();
    for name in result.column_names() {
        column_map.insert((base_table.to_owned(), name.to_owned()), name.to_owned());
    }
    let mut joined: Vec<String> = vec![base_table.to_owned()];

    loop {
        let mut progressed = false;
        for fk in fks {
            // Direction 1: the referencing side is already joined; bring in
            // the referenced table.
            let (new_table, new_key, anchor) = if joined.contains(&fk.from_table)
                && !joined.contains(&fk.to_table)
            {
                let Some(anchor) = column_map.get(&(fk.from_table.clone(), fk.from_column.clone()))
                else {
                    continue;
                };
                (fk.to_table.clone(), fk.to_column.clone(), anchor.clone())
            } else if joined.contains(&fk.to_table) && !joined.contains(&fk.from_table) {
                // Direction 2: the referenced side is joined; bring in the
                // referencing table (1:N handled by aggregation).
                let Some(anchor) = column_map.get(&(fk.to_table.clone(), fk.to_column.clone()))
                else {
                    continue;
                };
                (
                    fk.from_table.clone(),
                    fk.from_column.clone(),
                    anchor.clone(),
                )
            } else {
                continue;
            };
            let Ok(other) = db.table(&new_table) else {
                continue;
            };
            result = augment_join(&result, other, &anchor, &new_key)?;
            for col in other.column_names() {
                if col != new_key {
                    column_map.insert(
                        (new_table.clone(), col.to_owned()),
                        format!("{new_table}.{col}"),
                    );
                }
            }
            joined.push(new_table);
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    Ok(result)
}

/// Assembles the Full table from the database's declared foreign keys.
pub fn assemble_full(db: &Database, base_table: &str) -> Result<Table> {
    assemble_joined(db, base_table, db.foreign_keys())
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Value;

    /// loans -> account -> district chain (two hops).
    fn chain_db() -> Database {
        let mut db = Database::new();
        let mut loans = Table::new("loans", vec!["loan_id", "acct", "amount"]);
        let mut account = Table::new("account", vec!["acct", "dist"]);
        let mut district = Table::new("district", vec!["dist", "risk"]);
        for i in 0..6 {
            loans
                .push_row(vec![
                    format!("l{i}").into(),
                    format!("a{i}").into(),
                    Value::Float(i as f64),
                ])
                .unwrap();
            account
                .push_row(vec![format!("a{i}").into(), format!("d{}", i % 2).into()])
                .unwrap();
        }
        for d in 0..2 {
            district
                .push_row(vec![format!("d{d}").into(), Value::Float(d as f64 * 10.0)])
                .unwrap();
        }
        db.add_table(loans).unwrap();
        db.add_table(account).unwrap();
        db.add_table(district).unwrap();
        db.add_foreign_key(ForeignKey::new("loans", "acct", "account", "acct"));
        db.add_foreign_key(ForeignKey::new("account", "dist", "district", "dist"));
        db
    }

    #[test]
    fn base_is_base() {
        let db = chain_db();
        let t = assemble_base(&db, "loans").unwrap();
        assert_eq!(t.column_count(), 3);
        assert_eq!(t.row_count(), 6);
    }

    #[test]
    fn full_follows_two_hops() {
        let db = chain_db();
        let t = assemble_full(&db, "loans").unwrap();
        assert_eq!(t.row_count(), 6);
        let names = t.column_names();
        assert!(names.contains(&"account.dist"));
        assert!(names.contains(&"district.risk"));
        // Loan 3 -> account a3 -> district d1 -> risk 10.
        let risk_idx = t.column_index("district.risk").unwrap();
        assert_eq!(t.value(3, risk_idx).unwrap(), &Value::Float(10.0));
    }

    #[test]
    fn reverse_direction_joins_aggregate() {
        // Orders reference loans (N:1); joining orders onto loans must
        // aggregate and keep 6 rows.
        let mut db = chain_db();
        let mut orders = Table::new("orders", vec!["loan", "qty"]);
        for i in 0..12 {
            orders
                .push_row(vec![format!("l{}", i % 6).into(), Value::Float(i as f64)])
                .unwrap();
        }
        db.add_table(orders).unwrap();
        db.add_foreign_key(ForeignKey::new("orders", "loan", "loans", "loan_id"));
        let t = assemble_full(&db, "loans").unwrap();
        assert_eq!(t.row_count(), 6);
        assert!(t.column_names().contains(&"orders.qty"));
        // Loan 0 matched orders 0 and 6 => mean qty 3.0.
        let qty_idx = t.column_index("orders.qty").unwrap();
        assert_eq!(t.value(0, qty_idx).unwrap(), &Value::Float(3.0));
    }

    #[test]
    fn unreachable_tables_are_skipped() {
        let mut db = chain_db();
        let mut island = Table::new("island", vec!["x"]);
        island.push_row(vec!["v".into()]).unwrap();
        db.add_table(island).unwrap();
        let t = assemble_full(&db, "loans").unwrap();
        assert!(!t.column_names().iter().any(|c| c.starts_with("island.")));
    }
}
