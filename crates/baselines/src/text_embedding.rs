//! Text-sequence embedding baselines (Table 5):
//!
//! * **Word2Vec**: textify each row into a token sentence, train SGNS on
//!   the sentence corpus, and featurize rows as mean token vectors. No
//!   graph — the paper's sequential baseline.
//! * **DeepER-style**: the same token vectors composed *attribute-aware*
//!   (per-attribute means concatenated, then projected back to `dim` with
//!   PCA), mimicking DeepER's distributed tuple representations.

use crate::util::{mean_token_features, mean_token_features_train};
use leva_embedding::{train_sgns, Corpus, EmbeddingStore, SgnsConfig};
use leva_linalg::{Matrix, Pca};
use leva_relational::{Database, Table};
use leva_textify::{textify, TextifyConfig, TokenizedDatabase};

/// How tuple vectors are composed from token vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// Plain mean over all row tokens (Word2Vec baseline).
    Mean,
    /// Per-attribute means concatenated then PCA-projected to `dim`
    /// (DeepER-style tuple embeddings).
    AttributeConcat,
}

/// A fitted text-sequence embedding baseline.
pub struct TextEmbedding {
    store: EmbeddingStore,
    tokenized: TokenizedDatabase,
    base_table: String,
    base_index: usize,
    composition: Composition,
    /// PCA fitted on the training composition (AttributeConcat only).
    projector: Option<Pca>,
    n_base_columns: usize,
}

impl TextEmbedding {
    /// Fits the baseline. `target_column` is stripped from the base table
    /// before training, as with Leva.
    pub fn fit(
        db: &Database,
        base_table: &str,
        target_column: Option<&str>,
        composition: Composition,
        sgns: &SgnsConfig,
    ) -> TextEmbedding {
        let mut working = db.clone();
        if let Some(t) = target_column {
            let table = working.table_mut(base_table).expect("base exists");
            let _ = table.remove_column(t);
        }
        let tokenized = textify(&working, &TextifyConfig::default());
        let base_index = working
            .tables()
            .iter()
            .position(|t| t.name() == base_table)
            .expect("base exists");
        // One sentence per row. Tokens stay interned ids end to end: the
        // corpus and the trained store share the tokenizer's symbol table,
        // so no second intern pass happens here.
        let sentences: Vec<Vec<leva_textify::TokenId>> = tokenized
            .tables
            .iter()
            .flat_map(|t| {
                t.rows
                    .iter()
                    .map(|r| r.tokens.iter().map(|o| o.token).collect())
            })
            .collect();
        let corpus =
            Corpus::from_token_sentences(std::sync::Arc::clone(&tokenized.symbols), sentences);
        let store = train_sgns(&corpus, sgns).into_store(&corpus, sgns.dim);
        let n_base_columns = working.table(base_table).expect("base").column_count();
        let mut this = TextEmbedding {
            store,
            tokenized,
            base_table: base_table.to_owned(),
            base_index,
            composition,
            projector: None,
            n_base_columns,
        };
        if composition == Composition::AttributeConcat {
            let wide = this.attribute_concat(working.table(base_table).expect("base"));
            let pca = Pca::fit(&wide, sgns.dim.min(wide.cols()));
            this.projector = Some(pca);
        }
        this
    }

    /// The trained token store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// Featurizes the (training) base-table rows.
    pub fn featurize_base(&self) -> Matrix {
        match self.composition {
            Composition::Mean => {
                mean_token_features_train(&self.store, &self.tokenized, self.base_index)
            }
            Composition::AttributeConcat => {
                // Recompose through the encoders so train and test use the
                // exact same path.
                let n = self.tokenized.tables[self.base_index].rows.len();
                let mut by_attr = Matrix::zeros(n, self.n_base_columns * self.store.dim());
                self.fill_attribute_concat_train(&mut by_attr);
                self.projector.as_ref().expect("fitted").transform(&by_attr)
            }
        }
    }

    /// Featurizes external rows (same schema as the base table minus the
    /// target).
    pub fn featurize_external(&self, table: &Table) -> Matrix {
        match self.composition {
            Composition::Mean => {
                mean_token_features(&self.store, &self.tokenized, &self.base_table, table)
            }
            Composition::AttributeConcat => {
                let wide = self.attribute_concat(table);
                self.projector.as_ref().expect("fitted").transform(&wide)
            }
        }
    }

    /// Per-attribute mean token vectors, concatenated in base-column order.
    fn attribute_concat(&self, table: &Table) -> Matrix {
        let dim = self.store.dim();
        let mut out = Matrix::zeros(table.row_count(), self.n_base_columns * dim);
        // Attribute slot by encoder order: use the encoder attr ids of the
        // base table, remapped to 0..n_base_columns.
        let mut base_cols: Vec<(&str, u32)> = self
            .tokenized
            .encoders
            .iter()
            .filter(|((t, _), _)| t == &self.base_table)
            .map(|((_, c), e)| (c.as_str(), e.attr))
            .collect();
        base_cols.sort_by_key(|&(_, attr)| attr);
        for r in 0..table.row_count() {
            for (slot, (col, _)) in base_cols.iter().enumerate().take(self.n_base_columns) {
                let Ok(c_idx) = table.column_index(col) else {
                    continue;
                };
                let Some(enc) = self.tokenized.encoder(&self.base_table, col) else {
                    continue;
                };
                let v = table.value(r, c_idx).expect("in bounds");
                let mut acc = vec![0.0; dim];
                let mut count = 0usize;
                for token in enc.encode(v) {
                    if let Some(emb) = self.store.get(&token) {
                        for (a, &e) in acc.iter_mut().zip(emb) {
                            *a += e;
                        }
                        count += 1;
                    }
                }
                if count > 0 {
                    let out_row = out.row_mut(r);
                    for (i, a) in acc.into_iter().enumerate() {
                        out_row[slot * dim + i] = a / count as f64;
                    }
                }
            }
        }
        out
    }

    fn fill_attribute_concat_train(&self, out: &mut Matrix) {
        let dim = self.store.dim();
        // Map attr id -> slot for base-table encoders.
        let mut base_attrs: Vec<u32> = self
            .tokenized
            .encoders
            .iter()
            .filter(|((t, _), _)| t == &self.base_table)
            .map(|(_, e)| e.attr)
            .collect();
        base_attrs.sort_unstable();
        let slot_of = |attr: u32| base_attrs.iter().position(|&a| a == attr);
        for (r, row) in self.tokenized.tables[self.base_index]
            .rows
            .iter()
            .enumerate()
        {
            // Group tokens by attribute.
            let mut acc = vec![(vec![0.0; dim], 0usize); base_attrs.len()];
            for occ in &row.tokens {
                let Some(slot) = slot_of(occ.attr) else {
                    continue;
                };
                // The store shares the tokenizer's symbol table (see `fit`),
                // so the id indexes the dense vector table directly.
                if let Some(emb) = self.store.get_id(occ.token) {
                    for (a, &e) in acc[slot].0.iter_mut().zip(emb) {
                        *a += e;
                    }
                    acc[slot].1 += 1;
                }
            }
            let out_row = out.row_mut(r);
            for (slot, (vec, count)) in acc.into_iter().enumerate() {
                if count > 0 {
                    for (i, v) in vec.into_iter().enumerate() {
                        out_row[slot * dim + i] = v / count as f64;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Value;

    fn db() -> Database {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "grp", "target"]);
        let mut aux = Table::new("aux", vec!["id", "tag"]);
        for i in 0..24 {
            base.push_row(vec![
                format!("e{i}").into(),
                ["a", "b"][i % 2].into(),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
            aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 3).into()])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        db
    }

    fn sgns() -> SgnsConfig {
        SgnsConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        }
    }

    #[test]
    fn mean_composition_shapes() {
        let m = TextEmbedding::fit(&db(), "base", Some("target"), Composition::Mean, &sgns());
        let x = m.featurize_base();
        assert_eq!(x.rows(), 24);
        assert_eq!(x.cols(), 8);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn attribute_concat_projects_to_dim() {
        let m = TextEmbedding::fit(
            &db(),
            "base",
            Some("target"),
            Composition::AttributeConcat,
            &sgns(),
        );
        let x = m.featurize_base();
        assert_eq!(x.rows(), 24);
        assert_eq!(x.cols(), 8);
    }

    #[test]
    fn external_featurization_consistent() {
        let m = TextEmbedding::fit(&db(), "base", Some("target"), Composition::Mean, &sgns());
        let mut test = Table::new("test", vec!["id", "grp"]);
        test.push_row(vec!["e3".into(), "a".into()]).unwrap();
        let x = m.featurize_external(&test);
        assert_eq!(x.cols(), 8);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn target_is_not_in_vocabulary() {
        let m = TextEmbedding::fit(&db(), "base", Some("target"), Composition::Mean, &sgns());
        assert!(!m.store().contains("target#0"));
    }
}
