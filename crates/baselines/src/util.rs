//! Shared helpers for the embedding baselines.

use leva_embedding::EmbeddingStore;
use leva_linalg::Matrix;
use leva_relational::Table;
use leva_textify::TokenizedDatabase;

/// Featurizes arbitrary rows (typically held-out test rows) as the mean of
/// their token embeddings, using the *training* encoders of the base table.
/// Tokens absent from the store contribute nothing.
pub fn mean_token_features(
    store: &EmbeddingStore,
    tokenized: &TokenizedDatabase,
    base_table: &str,
    table: &Table,
) -> Matrix {
    let dim = store.dim();
    let mut out = Matrix::zeros(table.row_count(), dim);
    let encoders: Vec<_> = table
        .column_names()
        .iter()
        .map(|c| tokenized.encoder(base_table, c))
        .collect();
    for r in 0..table.row_count() {
        let mut count = 0usize;
        {
            let acc = out.row_mut(r);
            for (c, enc) in encoders.iter().enumerate() {
                let Some(enc) = enc else { continue };
                let v = table.value(r, c).expect("in bounds");
                for token in enc.encode(v) {
                    if let Some(emb) = store.get(&token) {
                        for (a, &e) in acc.iter_mut().zip(emb) {
                            *a += e;
                        }
                        count += 1;
                    }
                }
            }
        }
        if count > 0 {
            for a in out.row_mut(r) {
                *a /= count as f64;
            }
        }
    }
    out
}

/// Featurizes the tokenized base-table rows as mean token embeddings using
/// the already-emitted token streams (training side).
pub fn mean_token_features_train(
    store: &EmbeddingStore,
    tokenized: &TokenizedDatabase,
    base_index: usize,
) -> Matrix {
    let dim = store.dim();
    let rows = &tokenized.tables[base_index].rows;
    let mut out = Matrix::zeros(rows.len(), dim);
    // When the store shares the tokenizer's symbol table, token ids line up
    // and the lookup is a direct index; otherwise fall back to hashing the
    // resolved string (e.g. a store populated independently of `tokenized`).
    let shared = std::sync::Arc::ptr_eq(store.symbols(), &tokenized.symbols);
    for (r, row) in rows.iter().enumerate() {
        let mut count = 0usize;
        {
            let acc = out.row_mut(r);
            for occ in &row.tokens {
                let emb = if shared {
                    store.get_id(occ.token)
                } else {
                    store.get(tokenized.token_str(occ.token))
                };
                if let Some(emb) = emb {
                    for (a, &e) in acc.iter_mut().zip(emb) {
                        *a += e;
                    }
                    count += 1;
                }
            }
        }
        if count > 0 {
            for a in out.row_mut(r) {
                *a /= count as f64;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Database;
    use leva_textify::{textify, TextifyConfig};

    #[test]
    fn mean_features_average_token_vectors() {
        let mut db = Database::new();
        let mut t = Table::new("t", vec!["a", "b"]);
        for i in 0..6 {
            t.push_row(vec![["x", "y"][i % 2].into(), "z".into()])
                .unwrap();
        }
        db.add_table(t).unwrap();
        let tok = textify(&db, &TextifyConfig::default());
        let mut store = EmbeddingStore::new(2);
        store.insert("x", vec![2.0, 0.0]);
        store.insert("y", vec![0.0, 2.0]);
        store.insert("z", vec![0.0, 0.0]);
        let x = mean_token_features_train(&store, &tok, 0);
        // Row 0 tokens: x, z -> mean (1, 0).
        assert_eq!(x.row(0), &[1.0, 0.0]);
        assert_eq!(x.row(1), &[0.0, 1.0]);
        // External path matches.
        let ext = mean_token_features(&store, &tok, "t", db.table("t").unwrap());
        assert_eq!(ext.row(0), x.row(0));
    }
}
