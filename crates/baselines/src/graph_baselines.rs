//! Graph-embedding baselines (Table 5):
//!
//! * **Node2Vec**: Leva's syntactic graph *without* refinement or weighting
//!   (θ_range disabled, θ_min = 0, unweighted), embedded with biased
//!   second-order walks + SGNS.
//! * **EmbDI-style**: the tripartite cell/row/column graph of Cappuzzo et
//!   al. (SIGMOD'20), embedded with uniform walks + SGNS.

use crate::util::mean_token_features;
use leva_embedding::{
    node2vec_walks, train_sgns, Corpus, EmbeddingStore, Node2VecConfig, SgnsConfig,
};
use leva_graph::{build_graph, GraphConfig};
use leva_linalg::Matrix;
use leva_relational::{Database, Table};
use leva_textify::{textify, TextifyConfig, TokenizedDatabase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted graph baseline (Node2Vec or EmbDI flavour).
pub struct GraphBaseline {
    store: EmbeddingStore,
    tokenized: TokenizedDatabase,
    base_table: String,
    base_index: usize,
}

impl GraphBaseline {
    /// Node2Vec over the unrefined, unweighted syntactic graph.
    pub fn node2vec(
        db: &Database,
        base_table: &str,
        target_column: Option<&str>,
        n2v: &Node2VecConfig,
        sgns: &SgnsConfig,
    ) -> GraphBaseline {
        let (working, base_index) = strip_target(db, base_table, target_column);
        let tokenized = textify(&working, &TextifyConfig::default());
        // No refinement: θ_range > 1 disables missing-data removal, θ_min=0
        // keeps every attribute association, and edges are unweighted.
        let graph = build_graph(
            &tokenized,
            &GraphConfig {
                theta_range: 2.0,
                theta_min: 0.0,
                weighted: false,
            },
        );
        let corpus = node2vec_walks(&graph, n2v);
        let store = train_sgns(&corpus, sgns).into_store(&corpus, sgns.dim);
        GraphBaseline {
            store,
            tokenized,
            base_table: base_table.to_owned(),
            base_index,
        }
    }

    /// EmbDI-style tripartite graph + uniform walks.
    pub fn embdi(
        db: &Database,
        base_table: &str,
        target_column: Option<&str>,
        walk_length: usize,
        walks_per_node: usize,
        sgns: &SgnsConfig,
        seed: u64,
    ) -> GraphBaseline {
        Self::embdi_with_textify(
            db,
            base_table,
            target_column,
            walk_length,
            walks_per_node,
            sgns,
            seed,
            &TextifyConfig::default(),
        )
    }

    /// EmbDI with an explicit textification config — the Table 8 "EmbDI-F"
    /// variant enables multi-word splitting (input transformation), the
    /// "EmbDI-S" variant does not.
    #[allow(clippy::too_many_arguments)]
    pub fn embdi_with_textify(
        db: &Database,
        base_table: &str,
        target_column: Option<&str>,
        walk_length: usize,
        walks_per_node: usize,
        sgns: &SgnsConfig,
        seed: u64,
        textify_cfg: &TextifyConfig,
    ) -> GraphBaseline {
        let (working, base_index) = strip_target(db, base_table, target_column);
        let tokenized = textify(&working, textify_cfg);
        let corpus = embdi_walks(&tokenized, walk_length, walks_per_node, seed);
        let store = train_sgns(&corpus, sgns).into_store(&corpus, sgns.dim);
        GraphBaseline {
            store,
            tokenized,
            base_table: base_table.to_owned(),
            base_index,
        }
    }

    /// The embedding of row `idx` of `table`, if present.
    pub fn row_embedding(&self, table: &str, idx: usize) -> Option<&[f64]> {
        self.store.get(&format!("row::{table}::{idx}"))
    }

    /// The trained store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// Featurizes the training base rows from their row-node embeddings.
    pub fn featurize_base(&self) -> Matrix {
        let rows = self.tokenized.tables[self.base_index].rows.len();
        let dim = self.store.dim();
        let mut out = Matrix::zeros(rows, dim);
        for r in 0..rows {
            let name = format!("row::{}::{}", self.base_table, r);
            if let Some(emb) = self.store.get(&name) {
                out.row_mut(r).copy_from_slice(emb);
            }
        }
        out
    }

    /// Featurizes external rows as mean token embeddings.
    pub fn featurize_external(&self, table: &Table) -> Matrix {
        mean_token_features(&self.store, &self.tokenized, &self.base_table, table)
    }
}

fn strip_target(db: &Database, base_table: &str, target: Option<&str>) -> (Database, usize) {
    let mut working = db.clone();
    if let Some(t) = target {
        let table = working.table_mut(base_table).expect("base exists");
        let _ = table.remove_column(t);
    }
    let idx = working
        .tables()
        .iter()
        .position(|t| t.name() == base_table)
        .expect("base exists");
    (working, idx)
}

/// Builds EmbDI's tripartite graph — cell-value nodes linked to both their
/// row (RID) node and their column (CID) node — and walks it uniformly.
/// Sentences therefore interleave value, row, and column tokens, as in the
/// reference implementation.
fn embdi_walks(
    tokenized: &TokenizedDatabase,
    walk_length: usize,
    walks_per_node: usize,
    seed: u64,
) -> Corpus {
    use std::collections::HashMap;
    // Node ids: rows first, then columns, then values (interned).
    let mut names: Vec<String> = Vec::new();
    let mut adj: Vec<Vec<u32>> = Vec::new();
    let push_node = |names: &mut Vec<String>, adj: &mut Vec<Vec<u32>>, name: String| -> u32 {
        names.push(name);
        adj.push(Vec::new());
        (names.len() - 1) as u32
    };
    let mut value_ids: HashMap<String, u32> = HashMap::new();
    let mut column_ids: HashMap<u32, u32> = HashMap::new(); // attr -> node

    // Row nodes.
    let mut row_node: HashMap<(usize, usize), u32> = HashMap::new();
    for (ti, t) in tokenized.tables.iter().enumerate() {
        for ri in 0..t.rows.len() {
            let id = push_node(&mut names, &mut adj, format!("row::{}::{ri}", t.name));
            row_node.insert((ti, ri), id);
        }
    }
    // Column nodes per attribute.
    for (attr, name) in tokenized.attributes.iter().enumerate() {
        let id = push_node(&mut names, &mut adj, format!("col::{name}"));
        column_ids.insert(attr as u32, id);
    }
    // Value nodes and edges.
    for (ti, t) in tokenized.tables.iter().enumerate() {
        for (ri, row) in t.rows.iter().enumerate() {
            let rid = row_node[&(ti, ri)];
            for occ in &row.tokens {
                let vid = match value_ids.get(occ.token.as_str()) {
                    Some(&id) => id,
                    None => {
                        let id = push_node(&mut names, &mut adj, occ.token.clone());
                        value_ids.insert(occ.token.clone(), id);
                        id
                    }
                };
                let cid = column_ids[&occ.attr];
                adj[vid as usize].push(rid);
                adj[rid as usize].push(vid);
                adj[vid as usize].push(cid);
                adj[cid as usize].push(vid);
            }
        }
    }

    let n = names.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sequences = Vec::with_capacity(n * walks_per_node);
    for _ in 0..walks_per_node {
        for start in 0..n as u32 {
            let mut seq = Vec::with_capacity(walk_length);
            let mut current = start;
            for _ in 0..walk_length {
                seq.push(current);
                let nbrs = &adj[current as usize];
                if nbrs.is_empty() {
                    break;
                }
                current = nbrs[rng.gen_range(0..nbrs.len())];
            }
            if seq.len() >= 2 {
                sequences.push(seq);
            }
        }
    }
    Corpus {
        vocab: names,
        sequences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Value;

    fn db() -> Database {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "grp", "target"]);
        let mut aux = Table::new("aux", vec!["id", "tag"]);
        for i in 0..20 {
            base.push_row(vec![
                format!("e{i}").into(),
                ["a", "b"][i % 2].into(),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
            aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 3).into()])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        db
    }

    fn sgns() -> SgnsConfig {
        SgnsConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        }
    }

    #[test]
    fn node2vec_baseline_features() {
        let n2v = Node2VecConfig {
            walk_length: 15,
            walks_per_node: 3,
            ..Default::default()
        };
        let b = GraphBaseline::node2vec(&db(), "base", Some("target"), &n2v, &sgns());
        let x = b.featurize_base();
        assert_eq!(x.rows(), 20);
        assert_eq!(x.cols(), 8);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn embdi_baseline_features() {
        let b = GraphBaseline::embdi(&db(), "base", Some("target"), 15, 3, &sgns(), 7);
        let x = b.featurize_base();
        assert_eq!(x.rows(), 20);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
        // Column nodes exist in the EmbDI vocabulary.
        assert!(b.store().contains("col::base.grp"));
    }

    #[test]
    fn external_rows_featurized() {
        let b = GraphBaseline::embdi(&db(), "base", Some("target"), 10, 2, &sgns(), 3);
        let mut test = Table::new("test", vec!["id", "grp"]);
        test.push_row(vec!["e5".into(), "b".into()]).unwrap();
        let x = b.featurize_external(&test);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
    }
}
