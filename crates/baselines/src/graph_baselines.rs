//! Graph-embedding baselines (Table 5):
//!
//! * **Node2Vec**: Leva's syntactic graph *without* refinement or weighting
//!   (θ_range disabled, θ_min = 0, unweighted), embedded with biased
//!   second-order walks + SGNS.
//! * **EmbDI-style**: the tripartite cell/row/column graph of Cappuzzo et
//!   al. (SIGMOD'20), embedded with uniform walks + SGNS.

use crate::util::mean_token_features;
use leva_embedding::{
    node2vec_walks, train_sgns, Corpus, EmbeddingStore, Node2VecConfig, SgnsConfig, TokenId,
    TokenInterner,
};
use leva_graph::{build_graph, GraphConfig};
use leva_linalg::Matrix;
use leva_relational::{Database, Table};
use leva_textify::{row_name, textify, TextifyConfig, TokenizedDatabase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted graph baseline (Node2Vec or EmbDI flavour).
pub struct GraphBaseline {
    store: EmbeddingStore,
    tokenized: TokenizedDatabase,
    base_table: String,
    base_index: usize,
}

impl GraphBaseline {
    /// Node2Vec over the unrefined, unweighted syntactic graph.
    pub fn node2vec(
        db: &Database,
        base_table: &str,
        target_column: Option<&str>,
        n2v: &Node2VecConfig,
        sgns: &SgnsConfig,
    ) -> GraphBaseline {
        let (working, base_index) = strip_target(db, base_table, target_column);
        let tokenized = textify(&working, &TextifyConfig::default());
        // No refinement: θ_range > 1 disables missing-data removal, θ_min=0
        // keeps every attribute association, and edges are unweighted.
        let graph = build_graph(
            &tokenized,
            &GraphConfig {
                theta_range: 2.0,
                theta_min: 0.0,
                weighted: false,
            },
        );
        let corpus = node2vec_walks(&graph, n2v);
        let store = train_sgns(&corpus, sgns).into_store(&corpus, sgns.dim);
        GraphBaseline {
            store,
            tokenized,
            base_table: base_table.to_owned(),
            base_index,
        }
    }

    /// EmbDI-style tripartite graph + uniform walks.
    pub fn embdi(
        db: &Database,
        base_table: &str,
        target_column: Option<&str>,
        walk_length: usize,
        walks_per_node: usize,
        sgns: &SgnsConfig,
        seed: u64,
    ) -> GraphBaseline {
        Self::embdi_with_textify(
            db,
            base_table,
            target_column,
            walk_length,
            walks_per_node,
            sgns,
            seed,
            &TextifyConfig::default(),
        )
    }

    /// EmbDI with an explicit textification config — the Table 8 "EmbDI-F"
    /// variant enables multi-word splitting (input transformation), the
    /// "EmbDI-S" variant does not.
    #[allow(clippy::too_many_arguments)]
    pub fn embdi_with_textify(
        db: &Database,
        base_table: &str,
        target_column: Option<&str>,
        walk_length: usize,
        walks_per_node: usize,
        sgns: &SgnsConfig,
        seed: u64,
        textify_cfg: &TextifyConfig,
    ) -> GraphBaseline {
        let (working, base_index) = strip_target(db, base_table, target_column);
        let tokenized = textify(&working, textify_cfg);
        let corpus = embdi_walks(&tokenized, walk_length, walks_per_node, seed);
        let store = train_sgns(&corpus, sgns).into_store(&corpus, sgns.dim);
        GraphBaseline {
            store,
            tokenized,
            base_table: base_table.to_owned(),
            base_index,
        }
    }

    /// The embedding of row `idx` of `table`, if present.
    pub fn row_embedding(&self, table: &str, idx: usize) -> Option<&[f64]> {
        self.store.get(&row_name(table, idx))
    }

    /// The trained store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// Featurizes the training base rows from their row-node embeddings.
    pub fn featurize_base(&self) -> Matrix {
        let rows = self.tokenized.tables[self.base_index].rows.len();
        let dim = self.store.dim();
        let mut out = Matrix::zeros(rows, dim);
        for r in 0..rows {
            if let Some(emb) = self.store.get(&row_name(&self.base_table, r)) {
                out.row_mut(r).copy_from_slice(emb);
            }
        }
        out
    }

    /// Featurizes external rows as mean token embeddings.
    pub fn featurize_external(&self, table: &Table) -> Matrix {
        mean_token_features(&self.store, &self.tokenized, &self.base_table, table)
    }
}

fn strip_target(db: &Database, base_table: &str, target: Option<&str>) -> (Database, usize) {
    let mut working = db.clone();
    if let Some(t) = target {
        let table = working.table_mut(base_table).expect("base exists");
        let _ = table.remove_column(t);
    }
    let idx = working
        .tables()
        .iter()
        .position(|t| t.name() == base_table)
        .expect("base exists");
    (working, idx)
}

/// Builds EmbDI's tripartite graph — cell-value nodes linked to both their
/// row (RID) node and their column (CID) node — and walks it uniformly.
/// Sentences therefore interleave value, row, and column tokens, as in the
/// reference implementation.
fn embdi_walks(
    tokenized: &TokenizedDatabase,
    walk_length: usize,
    walks_per_node: usize,
    seed: u64,
) -> Corpus {
    // Walk-graph nodes carry interned tokens; the local symbol table adds
    // `row::`/`col::` names on top of the value tokens resolved from the
    // tokenized database. Node ids: rows first, then columns, then values.
    const NO_NODE: u32 = u32::MAX;
    let mut symbols = TokenInterner::new();
    let mut vocab: Vec<TokenId> = Vec::new();
    let mut adj: Vec<Vec<u32>> = Vec::new();
    let push_node = |vocab: &mut Vec<TokenId>, adj: &mut Vec<Vec<u32>>, token: TokenId| -> u32 {
        vocab.push(token);
        adj.push(Vec::new());
        (vocab.len() - 1) as u32
    };
    // Walk-node id per tokenized value token / attribute, dense by id.
    let mut value_ids: Vec<u32> = vec![NO_NODE; tokenized.symbols.len()];
    let mut column_ids: Vec<u32> = vec![NO_NODE; tokenized.attributes.len()];

    // Row nodes, one per tokenized row; table-major so ids are implicit.
    let mut row_nodes: Vec<Vec<u32>> = Vec::with_capacity(tokenized.tables.len());
    for t in &tokenized.tables {
        let ids = (0..t.rows.len())
            .map(|ri| {
                let token = symbols.intern(&row_name(&t.name, ri));
                push_node(&mut vocab, &mut adj, token)
            })
            .collect();
        row_nodes.push(ids);
    }
    // Column nodes per attribute.
    for (attr, name) in tokenized.attributes.iter().enumerate() {
        let token = symbols.intern(&format!("col::{name}"));
        column_ids[attr] = push_node(&mut vocab, &mut adj, token);
    }
    // Value nodes and edges.
    for (ti, t) in tokenized.tables.iter().enumerate() {
        for (ri, row) in t.rows.iter().enumerate() {
            let rid = row_nodes[ti][ri];
            for occ in &row.tokens {
                let slot = &mut value_ids[occ.token.index()];
                if *slot == NO_NODE {
                    let token = symbols.intern(tokenized.token_str(occ.token));
                    *slot = push_node(&mut vocab, &mut adj, token);
                }
                let vid = *slot;
                let cid = column_ids[occ.attr as usize];
                adj[vid as usize].push(rid);
                adj[rid as usize].push(vid);
                adj[vid as usize].push(cid);
                adj[cid as usize].push(vid);
            }
        }
    }

    let n = vocab.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sequences = Vec::with_capacity(n * walks_per_node);
    for _ in 0..walks_per_node {
        for start in 0..n as u32 {
            let mut seq = Vec::with_capacity(walk_length);
            let mut current = start;
            for _ in 0..walk_length {
                seq.push(current);
                let nbrs = &adj[current as usize];
                if nbrs.is_empty() {
                    break;
                }
                current = nbrs[rng.gen_range(0..nbrs.len())];
            }
            if seq.len() >= 2 {
                sequences.push(seq);
            }
        }
    }
    Corpus {
        symbols: std::sync::Arc::new(symbols),
        vocab,
        sequences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Value;

    fn db() -> Database {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "grp", "target"]);
        let mut aux = Table::new("aux", vec!["id", "tag"]);
        for i in 0..20 {
            base.push_row(vec![
                format!("e{i}").into(),
                ["a", "b"][i % 2].into(),
                Value::Int((i % 2) as i64),
            ])
            .unwrap();
            aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 3).into()])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        db
    }

    fn sgns() -> SgnsConfig {
        SgnsConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        }
    }

    #[test]
    fn node2vec_baseline_features() {
        let n2v = Node2VecConfig {
            walk_length: 15,
            walks_per_node: 3,
            ..Default::default()
        };
        let b = GraphBaseline::node2vec(&db(), "base", Some("target"), &n2v, &sgns());
        let x = b.featurize_base();
        assert_eq!(x.rows(), 20);
        assert_eq!(x.cols(), 8);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn embdi_baseline_features() {
        let b = GraphBaseline::embdi(&db(), "base", Some("target"), 15, 3, &sgns(), 7);
        let x = b.featurize_base();
        assert_eq!(x.rows(), 20);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
        // Column nodes exist in the EmbDI vocabulary.
        assert!(b.store().contains("col::base.grp"));
    }

    #[test]
    fn external_rows_featurized() {
        let b = GraphBaseline::embdi(&db(), "base", Some("target"), 10, 2, &sgns(), 3);
        let mut test = Table::new("test", vec!["id", "grp"]);
        test.push_row(vec!["e5".into(), "b".into()]).unwrap();
        let x = b.featurize_external(&test);
        assert!(x.row(0).iter().any(|&v| v != 0.0));
    }
}
