//! # leva-baselines
//!
//! Every baseline the Leva paper compares against, implemented on the same
//! substrate:
//!
//! * **Base / Full / Full+FE** (§2.1-2.2): one-hot featurization of the
//!   base table, of the oracle-joined full table, and of the full table
//!   after feature selection (`leva-ml`'s mutual-information and
//!   ARDA-style selectors).
//! * **Disc** (§6.1): join *discovery* via MinHash/Lazo-style containment
//!   estimation, then the same assembly over discovered (possibly
//!   spurious) joins.
//! * **Word2Vec / DeepER-style** (Table 5): SGNS over row-sentence corpora
//!   with mean or attribute-aware tuple composition.
//! * **Node2Vec / EmbDI-style** (Table 5): graph embeddings over the
//!   unrefined syntactic graph and the tripartite cell/row/column graph.

#![warn(missing_docs)]

mod assemble;
mod discovery;
mod featurize;
mod graph_baselines;
mod text_embedding;
mod util;

pub use assemble::{assemble_base, assemble_full, assemble_joined};
pub use discovery::{discover_joins, DiscoveredJoin};
pub use featurize::{target_vector, TableFeaturizer};
pub use graph_baselines::GraphBaseline;
pub use leva_discovery::ColumnSignature;
pub use text_embedding::{Composition, TextEmbedding};
pub use util::{mean_token_features, mean_token_features_train};

use leva_relational::{Database, ForeignKey, Result, Table};

/// Assembles the Disc training table: discover joins by content with the
/// given containment threshold, then join everything reachable. Spurious
/// discovered joins are *kept* — that is the point of the baseline.
pub fn assemble_disc(db: &Database, base_table: &str, threshold: f64) -> Result<Table> {
    let discovered: Vec<ForeignKey> = discover_joins(db, threshold)
        .into_iter()
        .map(|d| d.fk)
        .collect();
    assemble_joined(db, base_table, &discovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Value;

    #[test]
    fn disc_assembles_discovered_joins() {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "y"]);
        let mut aux = Table::new("aux", vec!["id", "feature"]);
        for i in 0..30 {
            base.push_row(vec![format!("k{i}").into(), Value::Int(i)])
                .unwrap();
            aux.push_row(vec![format!("k{i}").into(), Value::Float(i as f64)])
                .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        // No declared FKs: only discovery can find the join.
        let t = assemble_disc(&db, "base", 0.8).unwrap();
        assert!(t.column_names().contains(&"aux.feature"));
        assert_eq!(t.row_count(), 30);
    }
}
