//! Join discovery for the Disc baseline (§6.1): a Lazo/Aurum-style
//! data-discovery pass that proposes joins from *content* — MinHash
//! signatures estimate Jaccard similarity, coupled with distinct-value
//! cardinalities to estimate containment (Lazo's trick). Discovered joins
//! include spurious ones (shared low-cardinality vocabularies), which is
//! exactly why Disc lands between Base and Full in the paper.

use leva_relational::{Column, Database, ForeignKey};
use std::collections::HashSet;

/// Number of hash functions per signature.
const SIGNATURE_SIZE: usize = 128;

/// A MinHash signature over a column's distinct rendered values, plus the
/// exact distinct count (cheap at ingestion time).
#[derive(Debug, Clone)]
pub struct ColumnSignature {
    mins: Vec<u64>,
    /// Number of distinct values in the column.
    pub distinct: usize,
}

fn hash_value(value: &str, salt: u64) -> u64 {
    // FNV-1a with a salt mixed in: cheap, deterministic, good enough for
    // MinHash (no adversarial inputs here).
    let mut h = 0xcbf29ce484222325u64 ^ salt.wrapping_mul(0x9e3779b97f4a7c15);
    for b in value.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl ColumnSignature {
    /// Builds the signature of a column.
    pub fn build(column: &Column) -> ColumnSignature {
        let distinct: HashSet<String> = column
            .values()
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| v.render().to_lowercase())
            .collect();
        let mut mins = vec![u64::MAX; SIGNATURE_SIZE];
        for value in &distinct {
            for (i, slot) in mins.iter_mut().enumerate() {
                let h = hash_value(value, i as u64);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        ColumnSignature {
            mins,
            distinct: distinct.len(),
        }
    }

    /// Estimated Jaccard similarity with another signature.
    pub fn jaccard(&self, other: &ColumnSignature) -> f64 {
        if self.distinct == 0 || other.distinct == 0 {
            return 0.0;
        }
        let agree = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / SIGNATURE_SIZE as f64
    }

    /// Lazo-style containment estimate: |A ∩ B| / |A|, derived from the
    /// Jaccard estimate and the two distinct counts via
    /// |A ∩ B| = J (|A| + |B|) / (1 + J).
    pub fn containment_in(&self, other: &ColumnSignature) -> f64 {
        if self.distinct == 0 {
            return 0.0;
        }
        let j = self.jaccard(other);
        let inter = j * (self.distinct + other.distinct) as f64 / (1.0 + j);
        (inter / self.distinct as f64).min(1.0)
    }
}

/// A discovered candidate join.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredJoin {
    /// The proposed foreign key (from = containing side).
    pub fk: ForeignKey,
    /// Estimated containment of the `from` column in the `to` column.
    pub containment: f64,
}

/// Scans all cross-table column pairs and proposes joins whose containment
/// estimate is at least `threshold`. Numeric (binnable) columns are skipped
/// — content-based discovery systems index string-like columns.
pub fn discover_joins(db: &Database, threshold: f64) -> Vec<DiscoveredJoin> {
    // Signatures for all textual columns.
    let mut sigs: Vec<(usize, String, String, ColumnSignature)> = Vec::new();
    for (ti, table) in db.tables().iter().enumerate() {
        for col in table.columns() {
            let dtype = col.infer_type();
            if matches!(
                dtype,
                leva_relational::DataType::Text | leva_relational::DataType::Int
            ) {
                sigs.push((
                    ti,
                    table.name().to_owned(),
                    col.name().to_owned(),
                    ColumnSignature::build(col),
                ));
            }
        }
    }
    let mut out = Vec::new();
    for (i, (ti, t_from, c_from, sig_from)) in sigs.iter().enumerate() {
        for (j, (tj, t_to, c_to, sig_to)) in sigs.iter().enumerate() {
            if i == j || ti == tj {
                continue;
            }
            // Join proposal: `from` values should be contained in `to`, and
            // `to` should look key-like (high distinct relative to rows).
            let containment = sig_from.containment_in(sig_to);
            if containment >= threshold && sig_to.distinct >= 2 {
                out.push(DiscoveredJoin {
                    fk: ForeignKey::new(t_from.clone(), c_from.clone(), t_to.clone(), c_to.clone()),
                    containment,
                });
            }
        }
    }
    // Deterministic order, strongest containment first.
    out.sort_by(|a, b| {
        b.containment
            .partial_cmp(&a.containment)
            .expect("finite containment")
            .then_with(|| format!("{:?}", a.fk).cmp(&format!("{:?}", b.fk)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::{Table, Value};

    fn col(vals: &[&str]) -> Column {
        Column::from_values("c", vals.iter().map(|&s| s.into()).collect())
    }

    #[test]
    fn jaccard_identical_columns() {
        let a = ColumnSignature::build(&col(&["x", "y", "z"]));
        let b = ColumnSignature::build(&col(&["x", "y", "z"]));
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
        assert!((a.containment_in(&b) - 1.0).abs() < 0.05);
    }

    #[test]
    fn jaccard_disjoint_columns() {
        let a = ColumnSignature::build(&col(&["a1", "a2", "a3"]));
        let b = ColumnSignature::build(&col(&["b1", "b2", "b3"]));
        assert!(a.jaccard(&b) < 0.1);
    }

    #[test]
    fn containment_estimate_for_subset() {
        let small: Vec<String> = (0..50).map(|i| format!("v{i}")).collect();
        let big: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        let a = ColumnSignature::build(&Column::from_values(
            "a",
            small.iter().map(|s| s.as_str().into()).collect(),
        ));
        let b = ColumnSignature::build(&Column::from_values(
            "b",
            big.iter().map(|s| s.as_str().into()).collect(),
        ));
        // A ⊂ B: containment of A in B ≈ 1, of B in A ≈ 0.25.
        assert!(a.containment_in(&b) > 0.8, "{}", a.containment_in(&b));
        let rev = b.containment_in(&a);
        assert!(rev > 0.1 && rev < 0.45, "{rev}");
    }

    #[test]
    fn discovers_true_join_and_spurious_overlap() {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "status"]);
        let mut aux = Table::new("aux", vec!["id", "flag"]);
        for i in 0..40 {
            base.push_row(vec![format!("k{i}").into(), ["on", "off"][i % 2].into()])
                .unwrap();
            aux.push_row(vec![
                format!("k{i}").into(),
                ["on", "off"][(i + 1) % 2].into(),
            ])
            .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        let joins = discover_joins(&db, 0.8);
        // The true id<->id join is discovered...
        assert!(joins
            .iter()
            .any(|j| j.fk.from_column == "id" && j.fk.to_column == "id"));
        // ...and so is the spurious status<->flag overlap (both {on, off}).
        assert!(joins
            .iter()
            .any(|j| j.fk.from_column == "status" && j.fk.to_column == "flag"));
    }

    #[test]
    fn numeric_float_columns_skipped() {
        let mut db = Database::new();
        let mut a = Table::new("a", vec!["m"]);
        let mut b = Table::new("b", vec!["m"]);
        for i in 0..20 {
            a.push_row(vec![Value::Float(i as f64 + 0.5)]).unwrap();
            b.push_row(vec![Value::Float(i as f64 + 0.5)]).unwrap();
        }
        db.add_table(a).unwrap();
        db.add_table(b).unwrap();
        assert!(discover_joins(&db, 0.5).is_empty());
    }
}
