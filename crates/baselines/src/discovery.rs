//! Join discovery for the Disc baseline (§6.1), rebased onto the shared
//! [`leva_discovery`] crate — the MinHash/Lazo machinery lives there now
//! (where the real pipeline's discovery stage also uses it); this module
//! keeps the baseline-shaped API: a flat threshold, no per-column candidate
//! cap, and [`ForeignKey`]-typed output for the join assembler. Discovered
//! joins include spurious ones (shared low-cardinality vocabularies), which
//! is exactly why Disc lands between Base and Full in the paper.

use leva_discovery::{discover_relationships, DiscoveryConfig};
use leva_relational::{Database, ForeignKey};

/// A discovered candidate join.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredJoin {
    /// The proposed foreign key (from = contained side).
    pub fk: ForeignKey,
    /// Estimated containment of the `from` column in the `to` column.
    pub containment: f64,
}

/// Scans all cross-table column pairs and proposes joins whose containment
/// estimate is at least `threshold`, in deterministic strongest-first
/// order. Numeric (binnable) columns are skipped — content-based discovery
/// systems index string-like columns.
pub fn discover_joins(db: &Database, threshold: f64) -> Vec<DiscoveredJoin> {
    discover_relationships(db, &DiscoveryConfig::disc_baseline(threshold))
        .into_iter()
        .map(|rel| DiscoveredJoin {
            fk: ForeignKey::new(rel.from_table, rel.from_column, rel.to_table, rel.to_column),
            containment: rel.containment,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::{Table, Value};

    #[test]
    fn discovers_true_join_and_spurious_overlap() {
        let mut db = Database::new();
        let mut base = Table::new("base", vec!["id", "status"]);
        let mut aux = Table::new("aux", vec!["id", "flag"]);
        for i in 0..40 {
            base.push_row(vec![format!("k{i}").into(), ["on", "off"][i % 2].into()])
                .unwrap();
            aux.push_row(vec![
                format!("k{i}").into(),
                ["on", "off"][(i + 1) % 2].into(),
            ])
            .unwrap();
        }
        db.add_table(base).unwrap();
        db.add_table(aux).unwrap();
        let joins = discover_joins(&db, 0.8);
        // The true id<->id join is discovered...
        assert!(joins
            .iter()
            .any(|j| j.fk.from_column == "id" && j.fk.to_column == "id"));
        // ...and so is the spurious status<->flag overlap (both {on, off}) —
        // the baseline keeps the permissive min-distinct of the original.
        assert!(joins
            .iter()
            .any(|j| j.fk.from_column == "status" && j.fk.to_column == "flag"));
        // Deterministic strongest-first order.
        for pair in joins.windows(2) {
            assert!(pair[0].containment >= pair[1].containment);
        }
    }

    #[test]
    fn numeric_float_columns_skipped() {
        let mut db = Database::new();
        let mut a = Table::new("a", vec!["m"]);
        let mut b = Table::new("b", vec!["m"]);
        for i in 0..20 {
            a.push_row(vec![Value::Float(i as f64 + 0.5)]).unwrap();
            b.push_row(vec![Value::Float(i as f64 + 0.5)]).unwrap();
        }
        db.add_table(a).unwrap();
        db.add_table(b).unwrap();
        assert!(discover_joins(&db, 0.5).is_empty());
    }
}
