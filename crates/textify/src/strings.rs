//! String handling (§4.1): a string cell is either an atomic token or a
//! formatted list ("a, b, c") whose elements should each become tokens.

use leva_relational::{Column, Value};

/// Delimiters the internal parser recognizes, in priority order.
const DELIMITERS: [char; 3] = [',', ';', '|'];

/// Splits a string cell into list elements when it looks like a formatted
/// list; returns `None` for atomic strings.
pub fn try_split_list(s: &str) -> Option<Vec<String>> {
    for d in DELIMITERS {
        if s.contains(d) {
            let parts: Vec<String> = s
                .split(d)
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_owned)
                .collect();
            if parts.len() >= 2 {
                return Some(parts);
            }
            return None;
        }
    }
    None
}

/// Decides whether a whole column should be treated as a list column: a
/// majority of its non-null string values must parse as lists with the same
/// leading delimiter.
pub fn looks_like_list_column(column: &Column) -> bool {
    let mut listy = 0usize;
    let mut total = 0usize;
    for v in column.values() {
        if let Value::Text(s) = v {
            total += 1;
            if try_split_list(s).is_some() {
                listy += 1;
            }
        }
    }
    total > 0 && listy * 2 > total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_comma_lists() {
        assert_eq!(
            try_split_list("a, b, c"),
            Some(vec!["a".into(), "b".into(), "c".into()])
        );
        assert_eq!(try_split_list("x;y"), Some(vec!["x".into(), "y".into()]));
        assert_eq!(try_split_list("p|q|r").map(|v| v.len()), Some(3));
    }

    #[test]
    fn atomic_strings_do_not_split() {
        assert_eq!(try_split_list("hello world"), None);
        assert_eq!(try_split_list("singleton"), None);
        // Trailing delimiter with one real element is atomic.
        assert_eq!(try_split_list("a,"), None);
        assert_eq!(try_split_list(""), None);
    }

    #[test]
    fn whitespace_elements_dropped() {
        assert_eq!(try_split_list("a, , b"), Some(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn column_majority_vote() {
        let listy = Column::from_values("tags", vec!["a,b".into(), "c,d".into(), "plain".into()]);
        assert!(looks_like_list_column(&listy));
        let atomic = Column::from_values("name", vec!["alice".into(), "bob".into(), "c,d".into()]);
        assert!(!looks_like_list_column(&atomic));
    }

    #[test]
    fn non_string_column_is_not_listy() {
        let col = Column::from_values("n", vec![Value::Int(1), Value::Int(2)]);
        assert!(!looks_like_list_column(&col));
    }
}
