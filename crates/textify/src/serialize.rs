//! Bounded binary (de)serialization of the textification output.
//!
//! Deployment featurization (and therefore the persistent model artifact,
//! DESIGN.md §6.10) needs the tokenized database — row token streams keep
//! serving-time row lookups possible — and the per-column encoders, whose
//! histograms quantize *unseen* inference-time values with the training bin
//! boundaries. Boundaries are stored as `f64` bit patterns so `bin()`
//! returns identical ids before and after a save/load round trip.
//!
//! The shared symbol table is **not** stored here; the artifact stores it
//! once and passes it to [`TokenizedDatabase::decode`], which range-checks
//! every token id against it.

use crate::binning::{Histogram, HistogramKind};
use crate::tokenizer::{
    ColumnEncoder, TokenOccurrence, TokenizedDatabase, TokenizedRow, TokenizedTable,
};
use crate::types::ColumnClass;
use leva_interner::codec::{ByteReader, ByteWriter, DecodeError};
use leva_interner::{TokenId, TokenInterner};
use std::collections::HashMap;
use std::sync::Arc;

fn class_tag(c: ColumnClass) -> u8 {
    match c {
        ColumnClass::Key => 0,
        ColumnClass::Numeric => 1,
        ColumnClass::Datetime => 2,
        ColumnClass::StringAtomic => 3,
        ColumnClass::StringList => 4,
        ColumnClass::Empty => 5,
    }
}

fn class_from_tag(t: u8) -> Result<ColumnClass, DecodeError> {
    Ok(match t {
        0 => ColumnClass::Key,
        1 => ColumnClass::Numeric,
        2 => ColumnClass::Datetime,
        3 => ColumnClass::StringAtomic,
        4 => ColumnClass::StringList,
        5 => ColumnClass::Empty,
        _ => return Err(DecodeError::Invalid("unknown column class tag")),
    })
}

impl ColumnEncoder {
    /// Serializes one encoder (without its map key).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u8(class_tag(self.class));
        w.put_u32(self.attr);
        w.put_str(&self.column_key);
        match &self.histogram {
            None => w.put_u8(0),
            Some(h) => {
                w.put_u8(1);
                w.put_u8(match h.kind() {
                    HistogramKind::EquiWidth => 0,
                    HistogramKind::EquiDepth => 1,
                });
                let b = h.boundaries();
                w.put_u32(u32::try_from(b.len()).expect("boundary count fits u32"));
                for &x in b {
                    w.put_f64(x);
                }
            }
        }
        w.put_u8(u8::from(self.split_multiword));
        w.put_u8(u8::from(self.int_key));
    }

    /// Decodes one encoder, validating every tag.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<ColumnEncoder, DecodeError> {
        let class = class_from_tag(r.take_u8()?)?;
        let attr = r.take_u32()?;
        let column_key = r.take_str()?.to_owned();
        let histogram = match r.take_u8()? {
            0 => None,
            1 => {
                let kind = match r.take_u8()? {
                    0 => HistogramKind::EquiWidth,
                    1 => HistogramKind::EquiDepth,
                    _ => return Err(DecodeError::Invalid("unknown histogram kind tag")),
                };
                let n = r.take_count(8)?;
                let mut boundaries = Vec::with_capacity(n);
                for _ in 0..n {
                    boundaries.push(r.take_f64()?);
                }
                // The builders only emit finite, strictly increasing
                // boundaries; anything else is a corrupt or hostile
                // artifact and would silently mis-bin unseen values.
                Some(
                    Histogram::try_from_parts(kind, boundaries).ok_or(DecodeError::Invalid(
                        "histogram boundaries not finite and strictly increasing",
                    ))?,
                )
            }
            _ => return Err(DecodeError::Invalid("unknown histogram presence tag")),
        };
        let split_multiword = r.take_u8()? != 0;
        let int_key = r.take_u8()? != 0;
        Ok(ColumnEncoder {
            class,
            attr,
            column_key,
            histogram,
            split_multiword,
            int_key,
        })
    }
}

impl TokenizedDatabase {
    /// Serializes attributes, encoders, and per-row token streams (the
    /// symbol table is stored separately by the artifact layer).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(u32::try_from(self.attributes.len()).expect("attribute count fits u32"));
        for a in &self.attributes {
            w.put_str(a);
        }
        // HashMap iteration order is unstable; sort so identical models
        // produce identical bytes (the artifact CRC depends on it).
        let mut keys: Vec<&(String, String)> = self.encoders.keys().collect();
        keys.sort();
        w.put_u32(u32::try_from(keys.len()).expect("encoder count fits u32"));
        for key in keys {
            w.put_str(&key.0);
            w.put_str(&key.1);
            self.encoders[key].encode_into(w);
        }
        w.put_u32(u32::try_from(self.tables.len()).expect("table count fits u32"));
        for table in &self.tables {
            w.put_str(&table.name);
            w.put_u32(u32::try_from(table.rows.len()).expect("row count fits u32"));
            for row in &table.rows {
                w.put_u32(row.row_token.raw());
                w.put_u32(u32::try_from(row.tokens.len()).expect("token count fits u32"));
                for occ in &row.tokens {
                    w.put_u32(occ.token.raw());
                    w.put_u32(occ.attr);
                }
            }
        }
    }

    /// Decodes a tokenized database against an existing symbol table,
    /// range-checking every token id and attribute reference.
    pub fn decode(
        r: &mut ByteReader<'_>,
        symbols: Arc<TokenInterner>,
    ) -> Result<TokenizedDatabase, DecodeError> {
        let n_attrs = r.take_count(4)?;
        let mut attributes = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attributes.push(r.take_str()?.to_owned());
        }
        let n_encoders = r.take_count(8)?;
        let mut encoders = HashMap::with_capacity(n_encoders);
        for _ in 0..n_encoders {
            let table = r.take_str()?.to_owned();
            let column = r.take_str()?.to_owned();
            let enc = ColumnEncoder::decode(r)?;
            if enc.attr as usize >= attributes.len() {
                return Err(DecodeError::Invalid("encoder attribute out of range"));
            }
            if encoders.insert((table, column), enc).is_some() {
                return Err(DecodeError::Invalid("duplicate encoder key"));
            }
        }
        let take_token = |r: &mut ByteReader<'_>| -> Result<TokenId, DecodeError> {
            let raw = r.take_u32()?;
            if raw as usize >= symbols.len() {
                return Err(DecodeError::Invalid("token outside symbol table"));
            }
            Ok(TokenId::from_index(raw as usize))
        };
        let n_tables = r.take_count(4)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = r.take_str()?.to_owned();
            let n_rows = r.take_count(8)?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let row_token = take_token(r)?;
                let n_tokens = r.take_count(8)?;
                let mut tokens = Vec::with_capacity(n_tokens);
                for _ in 0..n_tokens {
                    let token = take_token(r)?;
                    let attr = r.take_u32()?;
                    if attr as usize >= attributes.len() {
                        return Err(DecodeError::Invalid("occurrence attribute out of range"));
                    }
                    tokens.push(TokenOccurrence { token, attr });
                }
                rows.push(TokenizedRow { tokens, row_token });
            }
            tables.push(TokenizedTable { name, rows });
        }
        Ok(TokenizedDatabase {
            tables,
            attributes,
            encoders,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::{textify, TextifyConfig};
    use leva_relational::{Database, Table, Value};

    fn tokenized() -> TokenizedDatabase {
        let mut db = Database::new();
        let mut a = Table::new("people", vec!["name", "age"]);
        let mut b = Table::new("visits", vec!["name", "site"]);
        for i in 0..15 {
            a.push_row(vec![format!("p{i}").into(), Value::Float(20.0 + i as f64)])
                .unwrap();
            b.push_row(vec![format!("p{i}").into(), format!("s{}", i % 4).into()])
                .unwrap();
        }
        db.add_table(a).unwrap();
        db.add_table(b).unwrap();
        textify(
            &db,
            &TextifyConfig {
                bin_count: 6,
                ..Default::default()
            },
        )
    }

    #[test]
    fn round_trip_preserves_streams_and_encoders() {
        let t = tokenized();
        let mut w = ByteWriter::new();
        t.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = TokenizedDatabase::decode(&mut r, Arc::clone(&t.symbols)).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.attributes, t.attributes);
        assert_eq!(back.tables.len(), t.tables.len());
        for (ta, tb) in t.tables.iter().zip(&back.tables) {
            assert_eq!(ta.name, tb.name);
            assert_eq!(ta.rows.len(), tb.rows.len());
            for (ra, rb) in ta.rows.iter().zip(&tb.rows) {
                assert_eq!(ra.row_token, rb.row_token);
                assert_eq!(ra.tokens, rb.tokens);
            }
        }
        assert_eq!(back.encoders.len(), t.encoders.len());
        let (ea, eb) = (
            t.encoder("people", "age").unwrap(),
            back.encoder("people", "age").unwrap(),
        );
        assert_eq!(ea.class, eb.class);
        assert_eq!(ea.attr, eb.attr);
        assert_eq!(ea.column_key, eb.column_key);
        // Histogram boundaries bit-exact ⇒ identical binning of unseen data.
        let (ha, hb) = (
            ea.histogram.as_ref().unwrap(),
            eb.histogram.as_ref().unwrap(),
        );
        assert_eq!(ha.kind(), hb.kind());
        assert_eq!(ha.boundaries().len(), hb.boundaries().len());
        for (x, y) in ha.boundaries().iter().zip(hb.boundaries()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for v in [-1e9, 0.0, 23.5, 27.0, 1e9] {
            assert_eq!(ea.encode(&Value::Float(v)), eb.encode(&Value::Float(v)));
        }
    }

    #[test]
    fn encoding_is_deterministic_despite_hashmap() {
        let t = tokenized();
        let mut w1 = ByteWriter::new();
        t.encode_into(&mut w1);
        let mut w2 = ByteWriter::new();
        t.clone().encode_into(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn hostile_buffers_error_without_panic() {
        let t = tokenized();
        let mut w = ByteWriter::new();
        t.encode_into(&mut w);
        let bytes = w.into_bytes();
        // Every truncation errors.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                TokenizedDatabase::decode(&mut r, Arc::clone(&t.symbols)).is_err(),
                "cut at {cut} decoded"
            );
        }
        // Token ids out of range for a smaller symbol table are rejected.
        let tiny = Arc::new(TokenInterner::new());
        let mut r = ByteReader::new(&bytes);
        assert!(TokenizedDatabase::decode(&mut r, tiny).is_err());
        // A bad class tag is a typed error.
        let mut w = ByteWriter::new();
        w.put_u8(99);
        let b = w.into_bytes();
        let mut r = ByteReader::new(&b);
        assert!(matches!(
            ColumnEncoder::decode(&mut r).unwrap_err(),
            DecodeError::Invalid(_) | DecodeError::Truncated
        ));
    }

    /// Regression: decode used to accept any f64 sequence as histogram
    /// boundaries. `bin()` binary-searches them, so unsorted or NaN
    /// boundaries silently mis-binned every unseen inference value.
    #[test]
    fn hostile_histogram_boundaries_are_rejected() {
        let encode_with_boundaries = |boundaries: &[f64]| {
            let enc = ColumnEncoder {
                class: ColumnClass::Numeric,
                attr: 0,
                column_key: "age".to_owned(),
                histogram: Some(Histogram::from_parts(
                    HistogramKind::EquiWidth,
                    boundaries.to_vec(),
                )),
                split_multiword: false,
                int_key: false,
            };
            let mut w = ByteWriter::new();
            enc.encode_into(&mut w);
            w.into_bytes()
        };
        for hostile in [
            &[2.0, 1.0][..],               // unsorted
            &[1.0, 1.0][..],               // not *strictly* increasing
            &[1.0, f64::NAN][..],          // NaN poisons partition_point
            &[f64::NEG_INFINITY, 1.0][..], // non-finite
            &[0.0, f64::INFINITY][..],
        ] {
            let bytes = encode_with_boundaries(hostile);
            let mut r = ByteReader::new(&bytes);
            let err = ColumnEncoder::decode(&mut r).unwrap_err();
            assert!(
                matches!(err, DecodeError::Invalid(_)),
                "boundaries {hostile:?}: {err}"
            );
        }
        // Well-formed boundaries (including the empty single-bin case)
        // still round-trip.
        for fine in [&[][..], &[0.5][..], &[-1.0, 0.0, 3.5][..]] {
            let bytes = encode_with_boundaries(fine);
            let mut r = ByteReader::new(&bytes);
            let back = ColumnEncoder::decode(&mut r).unwrap();
            assert_eq!(back.histogram.unwrap().boundaries(), fine);
        }
    }
}
