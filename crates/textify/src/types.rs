//! Column classification (§4.1): each column is assigned a textification
//! strategy before tokens are emitted.

use crate::strings::looks_like_list_column;
use leva_relational::{Column, ColumnStats, DataType};

/// The textification strategy chosen for a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnClass {
    /// Key-like column: near-unique, non-float. Values encode directly so
    /// exact KFK matches across tables share value nodes.
    Key,
    /// Numeric column: values are histogram-binned and emitted as
    /// `column#bin` tokens.
    Numeric,
    /// Datetime column: timestamps binned like numerics.
    Datetime,
    /// Atomic string column: raw value tokens.
    StringAtomic,
    /// Delimited string-list column: one token per element.
    StringList,
    /// Column with no usable values; emits nothing.
    Empty,
}

/// Thresholds governing classification.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyConfig {
    /// Distinct-ratio threshold above which a non-float column counts as a
    /// key. The paper asks for a ratio "close to one" to stay robust to
    /// duplicates and data errors.
    pub key_distinct_ratio: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        Self {
            key_distinct_ratio: 0.95,
        }
    }
}

/// Classifies a column given its inferred [`DataType`] and statistics.
pub fn classify_column(
    column: &Column,
    dtype: DataType,
    stats: &ColumnStats,
    cfg: &ClassifyConfig,
) -> ColumnClass {
    if stats.non_null == 0 {
        return ColumnClass::Empty;
    }
    // List-ness beats key-ness: a column of formatted lists is usually
    // near-unique as raw strings, but its *elements* are the tokens we want.
    if matches!(dtype, DataType::Text | DataType::Unknown) && looks_like_list_column(column) {
        return ColumnClass::StringList;
    }
    // Key heuristics (§4.1): distinct ratio close to 1 and not floating point.
    if stats.distinct_ratio >= cfg.key_distinct_ratio && dtype != DataType::Float {
        return ColumnClass::Key;
    }
    match dtype {
        DataType::Int | DataType::Float => ColumnClass::Numeric,
        DataType::Timestamp => ColumnClass::Datetime,
        DataType::Bool => ColumnClass::StringAtomic,
        DataType::Text | DataType::Unknown => {
            if looks_like_list_column(column) {
                ColumnClass::StringList
            } else {
                ColumnClass::StringAtomic
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::{column_stats, Column};

    fn classify(col: Column) -> ColumnClass {
        let stats = column_stats(&col);
        let dtype = col.infer_type();
        classify_column(&col, dtype, &stats, &ClassifyConfig::default())
    }

    #[test]
    fn unique_int_column_is_key() {
        let col = Column::from_values("id", (0..100).map(|i| (i as i64).into()).collect());
        assert_eq!(classify(col), ColumnClass::Key);
    }

    #[test]
    fn unique_float_column_is_not_key() {
        let col = Column::from_values("score", (0..100).map(|i| (i as f64 + 0.5).into()).collect());
        assert_eq!(classify(col), ColumnClass::Numeric);
    }

    #[test]
    fn repeated_int_column_is_numeric() {
        let col = Column::from_values("age", (0..100).map(|i| ((i % 10) as i64).into()).collect());
        assert_eq!(classify(col), ColumnClass::Numeric);
    }

    #[test]
    fn unique_strings_are_keys() {
        let col = Column::from_values(
            "name",
            (0..50).map(|i| format!("user_{i}").into()).collect(),
        );
        assert_eq!(classify(col), ColumnClass::Key);
    }

    #[test]
    fn repeated_strings_are_atomic() {
        let col = Column::from_values(
            "city",
            (0..50)
                .map(|i| ["nyc", "sfo", "chi"][i % 3].into())
                .collect(),
        );
        assert_eq!(classify(col), ColumnClass::StringAtomic);
    }

    #[test]
    fn near_unique_tolerates_duplicates() {
        // 96 distinct out of 100 (4 dupes) is still a key at the 0.95
        // threshold — robustness to data errors.
        let mut v: Vec<_> = (0..96).map(|i| format!("k{i}").into()).collect();
        for _ in 0..4 {
            v.push("k0".to_string().into());
        }
        let col = Column::from_values("id", v);
        assert_eq!(classify(col), ColumnClass::Key);
    }

    #[test]
    fn list_column_detected() {
        let col = Column::from_values(
            "tags",
            (0..30)
                .map(|i| format!("tag{},tag{},tag{}", i % 3, i % 5, i % 7).into())
                .collect(),
        );
        assert_eq!(classify(col), ColumnClass::StringList);
    }

    #[test]
    fn empty_column() {
        use leva_relational::Value;
        let col = Column::from_values("x", vec![Value::Null, Value::Null]);
        assert_eq!(classify(col), ColumnClass::Empty);
    }
}
