//! # leva-textify
//!
//! The *input and textification* stage of Leva (§4.1 of the paper). Converts
//! heterogeneous relational data into normalized string tokens:
//!
//! * column classification (key / numeric / datetime / string / string-list)
//!   with keyless key detection (distinct ratio ≈ 1 ∧ not float);
//! * kurtosis-driven histogram binning for numeric and datetime columns
//!   (heavy-tailed ⇒ equi-depth, else equi-width), with histograms shared
//!   per column name so same-named columns across tables stay joinable;
//! * dynamic missing-data handling: nulls and textual sentinels flow through
//!   as tokens and are removed later by the voting refinement;
//! * per-column encoders retained for quantizing unseen inference-time data.

#![warn(missing_docs)]

mod binning;
mod serialize;
mod strings;
mod tokenizer;
mod types;

pub use binning::{Histogram, HistogramChoice, HistogramKind};
pub use strings::{looks_like_list_column, try_split_list};
pub use tokenizer::{
    normalize_token, row_name, textify, AppendedRows, ColumnEncoder, TextifyConfig,
    TokenOccurrence, TokenizedDatabase, TokenizedRow, TokenizedTable,
};
pub use types::{classify_column, ClassifyConfig, ColumnClass};

pub use leva_interner::{TokenId, TokenInterner};
