//! Histogram binning for numerical and datetime data (§4.1).
//!
//! Leva quantizes numeric data into a fixed number of bins so that (a) the
//! token vocabulary stays small, (b) numerical proximity survives
//! textification (nearby values share a bin token), and (c) unseen values at
//! inference time can still be quantized. The histogram type is chosen by
//! the column's excess kurtosis: heavy-tailed distributions get equi-depth
//! bins (so outliers do not consume the whole range), light-tailed
//! distributions get equi-width bins.

use leva_relational::quantile_sorted;

/// Which histogram construction was used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// Uniformly spaced boundaries between min and max.
    EquiWidth,
    /// Boundaries at value quantiles (equal mass per bin).
    EquiDepth,
}

/// How the histogram kind is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistogramChoice {
    /// Select by excess kurtosis (> 0 ⇒ heavy tail ⇒ equi-depth). The
    /// paper's default ("Histogram Type: Kurtosis", Table 2).
    #[default]
    Kurtosis,
    /// Always equi-width.
    ForceEquiWidth,
    /// Always equi-depth.
    ForceEquiDepth,
}

/// A fitted histogram: `boundaries` are the interior cut points, so a
/// histogram with `b` bins stores `b - 1` boundaries. Values are clamped
/// into `[0, b-1]`, which is how unseen out-of-range data is quantized at
/// inference time.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    kind: HistogramKind,
    boundaries: Vec<f64>,
}

impl Histogram {
    /// Fits a histogram over `values` with `bins` bins, choosing the kind
    /// per `choice` using the supplied excess kurtosis (None ⇒ light tail).
    pub fn fit(
        values: &[f64],
        bins: usize,
        choice: HistogramChoice,
        excess_kurtosis: Option<f64>,
    ) -> Histogram {
        let bins = bins.max(1);
        let kind = match choice {
            HistogramChoice::ForceEquiWidth => HistogramKind::EquiWidth,
            HistogramChoice::ForceEquiDepth => HistogramKind::EquiDepth,
            HistogramChoice::Kurtosis => {
                // A normal distribution has excess kurtosis 0; heavier
                // tails than normal ⇒ equi-depth to keep outliers informative.
                if excess_kurtosis.unwrap_or(0.0) > 0.0 {
                    HistogramKind::EquiDepth
                } else {
                    HistogramKind::EquiWidth
                }
            }
        };
        match kind {
            HistogramKind::EquiWidth => Self::equi_width(values, bins),
            HistogramKind::EquiDepth => Self::equi_depth(values, bins),
        }
    }

    /// Equi-width histogram between the min and max of `values`.
    pub fn equi_width(values: &[f64], bins: usize) -> Histogram {
        let bins = bins.max(1);
        let (min, max) = min_max(values);
        let mut boundaries = Vec::with_capacity(bins.saturating_sub(1));
        if max > min {
            let width = (max - min) / bins as f64;
            for i in 1..bins {
                boundaries.push(min + width * i as f64);
            }
        }
        Histogram {
            kind: HistogramKind::EquiWidth,
            boundaries,
        }
    }

    /// Equi-depth histogram (quantile boundaries).
    pub fn equi_depth(values: &[f64], bins: usize) -> Histogram {
        let bins = bins.max(1);
        let mut sorted = values.to_vec();
        sorted.retain(|v| v.is_finite());
        sorted.sort_unstable_by(f64::total_cmp);
        let mut boundaries = Vec::with_capacity(bins.saturating_sub(1));
        if !sorted.is_empty() && sorted.first() != sorted.last() {
            for i in 1..bins {
                let q = i as f64 / bins as f64;
                let b = quantile_sorted(&sorted, q);
                // Keep boundaries strictly increasing; duplicate quantiles
                // (heavy point masses) collapse into a single boundary.
                if boundaries.last().is_none_or(|&last| b > last) {
                    boundaries.push(b);
                }
            }
        }
        Histogram {
            kind: HistogramKind::EquiDepth,
            boundaries,
        }
    }

    /// Reassembles a histogram from its parts (artifact deserialization).
    /// `boundaries` must be the interior cut points in increasing order, as
    /// returned by [`Histogram::boundaries`].
    pub fn from_parts(kind: HistogramKind, boundaries: Vec<f64>) -> Histogram {
        Histogram { kind, boundaries }
    }

    /// Like [`Histogram::from_parts`], but rejects boundary lists that the
    /// builders can never emit: every boundary must be finite and the list
    /// strictly increasing. `bin()`'s binary search assumes sorted input —
    /// an unsorted or NaN-bearing list would silently mis-bin values, so
    /// untrusted sources (artifact decode) must come through here.
    pub fn try_from_parts(kind: HistogramKind, boundaries: Vec<f64>) -> Option<Histogram> {
        let ordered =
            boundaries.windows(2).all(|w| w[0] < w[1]) && boundaries.iter().all(|b| b.is_finite());
        ordered.then_some(Histogram { kind, boundaries })
    }

    /// The histogram kind actually used.
    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// The interior bin boundaries (sorted; `bins() - 1` entries).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Maps a value to its bin id in `[0, bins)`. Out-of-range values clamp
    /// to the first/last bin.
    pub fn bin(&self, v: f64) -> usize {
        // Boundaries are sorted; binary search for the first boundary > v.
        self.boundaries.partition_point(|&b| b <= v)
    }
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if min > max {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_uniform_assignment() {
        let vals: Vec<f64> = (0..100).map(f64::from).collect();
        let h = Histogram::equi_width(&vals, 10);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.bin(0.0), 0);
        assert_eq!(h.bin(5.0), 0);
        assert_eq!(h.bin(55.0), 5);
        assert_eq!(h.bin(99.0), 9);
    }

    #[test]
    fn out_of_range_clamps() {
        let vals: Vec<f64> = (0..100).map(f64::from).collect();
        let h = Histogram::equi_width(&vals, 10);
        assert_eq!(h.bin(-1e9), 0);
        assert_eq!(h.bin(1e9), 9);
    }

    #[test]
    fn equi_depth_balances_mass() {
        // Heavily skewed data: equi-depth puts roughly equal counts per bin.
        let mut vals: Vec<f64> = (0..900).map(|i| f64::from(i) / 100.0).collect();
        vals.extend((0..100).map(|i| 1000.0 + f64::from(i)));
        let h = Histogram::equi_depth(&vals, 10);
        let mut counts = vec![0usize; h.bins()];
        for &v in &vals {
            counts[h.bin(v)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= min * 2, "counts = {counts:?}");
    }

    #[test]
    fn kurtosis_choice_selects_kind() {
        let light: Vec<f64> = (0..100).map(f64::from).collect();
        let h = Histogram::fit(&light, 10, HistogramChoice::Kurtosis, Some(-1.2));
        assert_eq!(h.kind(), HistogramKind::EquiWidth);
        let h = Histogram::fit(&light, 10, HistogramChoice::Kurtosis, Some(5.0));
        assert_eq!(h.kind(), HistogramKind::EquiDepth);
        let h = Histogram::fit(&light, 10, HistogramChoice::ForceEquiDepth, Some(-1.2));
        assert_eq!(h.kind(), HistogramKind::EquiDepth);
    }

    #[test]
    fn constant_column_single_bin() {
        let vals = vec![5.0; 50];
        let h = Histogram::fit(&vals, 10, HistogramChoice::Kurtosis, None);
        assert_eq!(h.bins(), 1);
        assert_eq!(h.bin(5.0), 0);
        assert_eq!(h.bin(100.0), 0);
    }

    #[test]
    fn empty_values_are_safe() {
        let h = Histogram::equi_width(&[], 10);
        assert_eq!(h.bins(), 1);
        assert_eq!(h.bin(3.0), 0);
    }

    #[test]
    fn duplicate_quantiles_collapse() {
        // 95% of values identical: most quantile boundaries coincide.
        let mut vals = vec![1.0; 95];
        vals.extend([2.0, 3.0, 4.0, 5.0, 6.0]);
        let h = Histogram::equi_depth(&vals, 10);
        assert!(h.bins() <= 10);
        assert!(h.bins() >= 2);
        // Monotone: larger values never land in smaller bins.
        assert!(h.bin(1.0) <= h.bin(6.0));
    }

    #[test]
    fn bin_is_monotone_in_value() {
        let vals: Vec<f64> = (0..1000).map(|i| (f64::from(i)).sqrt()).collect();
        let h = Histogram::equi_depth(&vals, 16);
        let mut last = 0;
        for i in 0..100 {
            let b = h.bin(f64::from(i) / 3.0);
            assert!(b >= last);
            last = b;
        }
    }
}
