//! The textification module (§4.1): converts a [`Database`] into per-row
//! token streams plus reusable per-column encoders for inference time.
//!
//! Token identity is what later creates graph edges, so the emission rules
//! matter:
//!
//! * **Keys** and **atomic strings** emit their normalized raw value — so a
//!   key in one table and a foreign-key usage in another produce the *same*
//!   token, which is how inclusion dependencies are recovered keylessly.
//! * **Numeric/datetime** values emit `column#bin` tokens. The histogram is
//!   fitted *per column name across the whole database*, so same-named
//!   numeric columns in different tables share bin boundaries and can still
//!   connect (approximate inclusion dependencies), while differently-named
//!   numeric columns never collide.
//! * **Nulls** emit a shared `"null"` token; textual sentinels (`"?"`,
//!   `"N/A"`, ...) stay verbatim. Both end up appearing under many
//!   attributes, which is exactly the signature the voting refinement
//!   (θ_range) uses to delete them — no static sentinel list required.

use crate::binning::{Histogram, HistogramChoice};
use crate::strings::try_split_list;
use crate::types::{classify_column, ClassifyConfig, ColumnClass};
use leva_interner::{TokenId, TokenInterner};
use leva_linalg::resolve_threads;
use leva_relational::{
    column_stats, excess_kurtosis, mean, std_dev, Database, RelationalError, Table, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the textification stage (Table 2, "Textification").
#[derive(Debug, Clone)]
pub struct TextifyConfig {
    /// Number of histogram bins for numeric/datetime columns (default 50).
    pub bin_count: usize,
    /// Histogram-kind selection policy (default: by kurtosis).
    pub histogram: HistogramChoice,
    /// Column-classification thresholds.
    pub classify: ClassifyConfig,
    /// Additionally split multi-word string/key tokens on whitespace,
    /// emitting word tokens alongside the full-string token. Off by default
    /// (the paper treats strings atomically); Leva's entity-resolution task
    /// (§6.7) enables it so perturbed record names still share tokens.
    pub split_multiword: bool,
    /// Worker threads for the token-emission pass (`0` = available
    /// parallelism). Tables are tokenized independently and merged in
    /// database order, so the output is identical at any thread count.
    pub threads: usize,
}

impl Default for TextifyConfig {
    fn default() -> Self {
        Self {
            bin_count: 50,
            histogram: HistogramChoice::default(),
            classify: ClassifyConfig::default(),
            split_multiword: false,
            threads: 1,
        }
    }
}

/// One token occurrence: the interned token id plus the (global) attribute
/// it appeared under — the unit of evidence for the voting mechanism.
/// Resolve the text through [`TokenizedDatabase::symbols`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenOccurrence {
    /// Interned token (dense id into the shared symbol table).
    pub token: TokenId,
    /// Global attribute id (index into [`TokenizedDatabase::attributes`]).
    pub attr: u32,
}

/// All tokens of one row.
#[derive(Debug, Clone)]
pub struct TokenizedRow {
    /// Token occurrences in column order (list columns emit several per cell).
    pub tokens: Vec<TokenOccurrence>,
    /// Interned `row::{table}::{index}` identity of this row — the graph
    /// builder keys the row node by it.
    pub row_token: TokenId,
}

/// All rows of one table.
#[derive(Debug, Clone)]
pub struct TokenizedTable {
    /// Source table name.
    pub name: String,
    /// Per-row token streams.
    pub rows: Vec<TokenizedRow>,
}

/// Per-column encoder kept around so *unseen* inference-time values can be
/// quantized with the training histograms (§2.4 "Using the Embedding").
#[derive(Debug, Clone)]
pub struct ColumnEncoder {
    /// Strategy assigned to the column.
    pub class: ColumnClass,
    /// Global attribute id of this column.
    pub attr: u32,
    /// Lowercased column name; prefix of bin tokens.
    pub column_key: String,
    /// Fitted histogram for numeric/datetime columns.
    pub histogram: Option<Histogram>,
    /// Whether multi-word strings additionally emit per-word tokens.
    pub split_multiword: bool,
    /// True for key columns of integer type: their tokens are prefixed with
    /// the column name (`machine_id=42`). Raw digits collide syntactically
    /// across unrelated numeric columns (the numeric variant of the paper's
    /// "Washington" problem), so integer keys match across tables through
    /// the same-column-name convention instead; string keys stay raw.
    pub int_key: bool,
}

impl ColumnEncoder {
    /// Encodes a single cell value into its tokens (empty for skipped cells).
    pub fn encode(&self, value: &Value) -> Vec<String> {
        if value.is_null() {
            return vec!["null".to_owned()];
        }
        match self.class {
            ColumnClass::Empty => Vec::new(),
            ColumnClass::Key => {
                if self.int_key {
                    vec![format!(
                        "{}={}",
                        self.column_key,
                        normalize_token(&value.render())
                    )]
                } else {
                    self.with_words(normalize_token(&value.render()))
                }
            }
            ColumnClass::Numeric | ColumnClass::Datetime => {
                match (value.as_f64(), self.histogram.as_ref()) {
                    (Some(v), Some(h)) => vec![format!("{}#{}", self.column_key, h.bin(v))],
                    // Dirty non-numeric cell in a numeric column (or a
                    // numeric column that never yielded a histogram): keep
                    // the cell verbatim so voting can recognize sentinels.
                    _ => vec![normalize_token(&value.render())],
                }
            }
            ColumnClass::StringAtomic => self.with_words(normalize_token(&value.render())),
            ColumnClass::StringList => {
                let raw = value.render();
                match try_split_list(&raw) {
                    Some(parts) => parts.iter().map(|p| normalize_token(p)).collect(),
                    None => vec![normalize_token(&raw)],
                }
            }
        }
    }
    /// The full token plus, when `split_multiword` is on, its whitespace-
    /// separated words.
    fn with_words(&self, token: String) -> Vec<String> {
        if self.split_multiword && token.contains(' ') {
            let mut out: Vec<String> = token
                .split_whitespace()
                .filter(|w| w.len() > 1)
                .map(str::to_owned)
                .collect();
            out.push(token);
            out
        } else {
            vec![token]
        }
    }
}

/// Output of textification: token streams plus the encoder registry and the
/// shared symbol table every downstream stage resolves through.
#[derive(Debug, Clone)]
pub struct TokenizedDatabase {
    /// One entry per input table, in database order.
    pub tables: Vec<TokenizedTable>,
    /// Global attribute names, `table.column`, indexed by attribute id.
    pub attributes: Vec<String>,
    /// Encoder per `(table, column)`.
    pub encoders: HashMap<(String, String), ColumnEncoder>,
    /// Shared symbol table: every value token and every row-identity token,
    /// interned once in database order (see DESIGN.md §6.8).
    pub symbols: Arc<TokenInterner>,
}

impl TokenizedDatabase {
    /// Total number of token occurrences across all tables.
    pub fn total_tokens(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.rows.iter().map(|r| r.tokens.len()).sum::<usize>())
            .sum()
    }

    /// Encoder lookup.
    pub fn encoder(&self, table: &str, column: &str) -> Option<&ColumnEncoder> {
        self.encoders.get(&(table.to_owned(), column.to_owned()))
    }

    /// Resolves an interned token id back to its text.
    pub fn token_str(&self, id: TokenId) -> &str {
        self.symbols.resolve(id)
    }

    /// Column encoders of table index `table`, in column (attribute) order.
    /// The length is the table's column arity as tokenized (the target
    /// column, if any, was stripped before textification).
    pub fn table_encoders(&self, table: usize) -> Vec<&ColumnEncoder> {
        let name = &self.tables[table].name;
        let mut encs: Vec<&ColumnEncoder> = self
            .encoders
            .iter()
            .filter(|((t, _), _)| t == name)
            .map(|(_, e)| e)
            .collect();
        encs.sort_by_key(|e| e.attr);
        encs
    }

    /// Tokenizes `rows` with the *fitted* encoders of table index `table`
    /// and appends them to that table's token stream, extending the shared
    /// symbol table.
    ///
    /// Mirrors the original emission exactly: each row interns its
    /// `row::{table}::{index}` identity first, then its value tokens in
    /// column order (sequential, so the result is deterministic at any
    /// thread count). Numeric cells outside the fitted histogram range
    /// clamp to the edge bin (`Histogram::bin`) — never a panic, never a
    /// dropped token.
    ///
    /// The symbol table is re-shared under a *new* `Arc` (old ids stay
    /// valid; the interner is append-only); callers holding the previous
    /// `Arc` (graph, embedding store) must adopt `self.symbols` afterwards.
    pub fn append_rows(
        &mut self,
        table: usize,
        rows: &[Vec<Value>],
    ) -> Result<AppendedRows, RelationalError> {
        if table >= self.tables.len() {
            return Err(RelationalError::UnknownTable {
                table: format!("#{table}"),
            });
        }
        let encoders = self.table_encoders(table);
        let name = self.tables[table].name.clone();
        for row in rows {
            if row.len() != encoders.len() {
                return Err(RelationalError::ArityMismatch {
                    table: name.clone(),
                    expected: encoders.len(),
                    actual: row.len(),
                });
            }
        }

        let first = self.tables[table].rows.len();
        let mut clamped = 0usize;
        // Clone-and-extend the append-only interner, then re-share it: old
        // TokenIds remain valid in the extended copy.
        let mut symbols = (*self.symbols).clone();
        let mut new_rows = Vec::with_capacity(rows.len());
        for (k, row) in rows.iter().enumerate() {
            let row_token = symbols.intern(&row_name(&name, first + k));
            let mut tokens = Vec::new();
            for (enc, value) in encoders.iter().zip(row) {
                if clamps_to_edge(enc, value) {
                    clamped += 1;
                }
                for text in enc.encode(value) {
                    if text.is_empty() {
                        continue;
                    }
                    tokens.push(TokenOccurrence {
                        token: symbols.intern(&text),
                        attr: enc.attr,
                    });
                }
            }
            new_rows.push(TokenizedRow { tokens, row_token });
        }
        self.symbols = Arc::new(symbols);
        self.tables[table].rows.extend(new_rows);
        Ok(AppendedRows {
            rows: first..self.tables[table].rows.len(),
            clamped_numerics: clamped,
        })
    }
}

/// Result of [`TokenizedDatabase::append_rows`].
#[derive(Debug, Clone)]
pub struct AppendedRows {
    /// Indices of the appended rows within the table's token stream.
    pub rows: std::ops::Range<usize>,
    /// Numeric/datetime cells that fell at or beyond the outermost fitted
    /// histogram boundaries and were clamped into an edge bin. (The
    /// histogram keeps only interior boundaries, so this is a cheap
    /// superset of strictly out-of-range values.)
    pub clamped_numerics: usize,
}

/// True when a numeric/datetime cell lies at or beyond the outermost fitted
/// bin boundaries — `Histogram::bin` clamps such values into the first/last
/// bin (§2.4, inference-time quantization of unseen data).
fn clamps_to_edge(enc: &ColumnEncoder, value: &Value) -> bool {
    if !matches!(enc.class, ColumnClass::Numeric | ColumnClass::Datetime) {
        return false;
    }
    let (Some(v), Some(h)) = (value.as_f64(), enc.histogram.as_ref()) else {
        return false;
    };
    match (h.boundaries().first(), h.boundaries().last()) {
        (Some(&lo), Some(&hi)) => v < lo || v >= hi,
        _ => false,
    }
}

/// Normalizes a token: trim + lowercase. Applied to every emitted token so
/// syntactic matches are case-insensitive.
pub fn normalize_token(s: &str) -> String {
    s.trim().to_lowercase()
}

/// Canonical text of the row-identity token for row `row` of `table`.
/// Centralized so textify, the graph, deployment, and the baselines agree.
pub fn row_name(table: &str, row: usize) -> String {
    format!("row::{table}::{row}")
}

/// Textifies every table of a database (columns are scanned in a streaming
/// fashion: one stats pass, one emission pass).
pub fn textify(db: &Database, cfg: &TextifyConfig) -> TokenizedDatabase {
    // Pass 1: classify columns and pool numeric values per column name.
    let mut attributes = Vec::new();
    let mut encoders: HashMap<(String, String), ColumnEncoder> = HashMap::new();
    let mut numeric_pool: HashMap<String, Vec<f64>> = HashMap::new();
    let mut pending_numeric: Vec<(String, String)> = Vec::new();

    for table in db.tables() {
        for col in table.columns() {
            let attr = attributes.len() as u32;
            attributes.push(format!("{}.{}", table.name(), col.name()));
            let stats = column_stats(col);
            let dtype = col.infer_type();
            let class = classify_column(col, dtype, &stats, &cfg.classify);
            let int_key =
                class == ColumnClass::Key && matches!(dtype, leva_relational::DataType::Int);
            let column_key = normalize_token(col.name());
            if matches!(class, ColumnClass::Numeric | ColumnClass::Datetime) {
                numeric_pool
                    .entry(column_key.clone())
                    .or_default()
                    .extend(col.numeric_values());
                pending_numeric.push((table.name().to_owned(), col.name().to_owned()));
            }
            encoders.insert(
                (table.name().to_owned(), col.name().to_owned()),
                ColumnEncoder {
                    class,
                    attr,
                    column_key,
                    histogram: None,
                    split_multiword: cfg.split_multiword,
                    int_key,
                },
            );
        }
    }

    // Fit one histogram per column-name group so same-named columns across
    // tables share bin boundaries.
    let mut histograms: HashMap<String, Histogram> = HashMap::new();
    for (key, values) in &numeric_pool {
        let m = mean(values);
        let sd = std_dev(values, m);
        let kurt = excess_kurtosis(values, m, sd);
        histograms.insert(
            key.clone(),
            Histogram::fit(values, cfg.bin_count, cfg.histogram, kurt),
        );
    }
    for (table, column) in pending_numeric {
        if let Some(enc) = encoders.get_mut(&(table, column)) {
            enc.histogram = histograms.get(&enc.column_key).cloned();
        }
    }

    // Pass 2: emit raw token text. Tables are independent once the encoders
    // exist, so they are sharded across workers and re-assembled in database
    // order.
    let raw_tables = tokenize_tables(db, &encoders, cfg.threads);

    // Pass 3: sequential intern merge, in database order. Row `r` of each
    // table interns its `row::{table}::{r}` identity first, then its value
    // tokens in column order — a fixed traversal, so id assignment is
    // deterministic and independent of the worker-thread count above.
    let mut symbols = TokenInterner::with_capacity(1024, 16 * 1024);
    let mut tables = Vec::with_capacity(raw_tables.len());
    for raw in raw_tables {
        let mut rows = Vec::with_capacity(raw.rows.len());
        for (ri, raw_row) in raw.rows.into_iter().enumerate() {
            let row_token = symbols.intern(&row_name(&raw.name, ri));
            let tokens = raw_row
                .into_iter()
                .map(|(text, attr)| TokenOccurrence {
                    token: symbols.intern(&text),
                    attr,
                })
                .collect();
            rows.push(TokenizedRow { tokens, row_token });
        }
        tables.push(TokenizedTable {
            name: raw.name,
            rows,
        });
    }

    TokenizedDatabase {
        tables,
        attributes,
        encoders,
        symbols: Arc::new(symbols),
    }
}

/// Raw (pre-interning) output of the parallel emission pass: token text plus
/// attribute id per occurrence, rows in table order.
struct RawTable {
    name: String,
    rows: Vec<Vec<(String, u32)>>,
}

/// Tokenizes every table of the database with the fitted encoders, sharding
/// tables across `threads` workers (`0` = available parallelism) in
/// contiguous chunks. The merge preserves database order, so the result is
/// identical at any thread count.
fn tokenize_tables(
    db: &Database,
    encoders: &HashMap<(String, String), ColumnEncoder>,
    threads: usize,
) -> Vec<RawTable> {
    let tables = db.tables();
    let n = tables.len();
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        return tables.iter().map(|t| tokenize_table(t, encoders)).collect();
    }
    let chunk = n.div_ceil(workers);
    let chunks: Option<Vec<Vec<RawTable>>> = crossbeam::scope(|s| {
        let handles: Vec<_> = tables
            .chunks(chunk)
            .map(|band| {
                s.spawn(move |_| band.iter().map(|t| tokenize_table(t, encoders)).collect())
            })
            .collect();
        handles.into_iter().map(|h| h.join().ok()).collect()
    })
    .ok()
    .flatten();
    match chunks {
        Some(chunks) => chunks.into_iter().flatten().collect(),
        // A worker died mid-emission (should be unreachable now that
        // encoding is panic-free); redo the pass sequentially so the caller
        // still gets a complete, deterministic result.
        None => tables.iter().map(|t| tokenize_table(t, encoders)).collect(),
    }
}

/// Emits the token stream of one table (the per-table unit of parallel work).
fn tokenize_table(table: &Table, encoders: &HashMap<(String, String), ColumnEncoder>) -> RawTable {
    // Columns without a registered encoder (impossible for databases built
    // through the public API) contribute no tokens rather than panicking.
    let col_encoders: Vec<Option<&ColumnEncoder>> = table
        .columns()
        .iter()
        .map(|c| encoders.get(&(table.name().to_owned(), c.name().to_owned())))
        .collect();
    let mut rows = Vec::with_capacity(table.row_count());
    for r in 0..table.row_count() {
        let mut row = Vec::new();
        for (c, enc) in col_encoders.iter().enumerate() {
            let Some(enc) = enc else { continue };
            let Ok(v) = table.value(r, c) else { continue };
            for token in enc.encode(v) {
                if token.is_empty() {
                    continue;
                }
                row.push((token, enc.attr));
            }
        }
        rows.push(row);
    }
    RawTable {
        name: table.name().to_owned(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leva_relational::Table;

    fn student_db() -> Database {
        let mut db = Database::new();
        let mut expenses = Table::new("expenses", vec!["name", "gender", "total"]);
        for i in 0..20 {
            expenses
                .push_row(vec![
                    format!("Student_{i}").into(),
                    ["M", "F"][i % 2].into(),
                    Value::Float((i as f64) * 10.0),
                ])
                .unwrap();
        }
        let mut orders = Table::new("orders", vec!["name", "item"]);
        for i in 0..40 {
            orders
                .push_row(vec![
                    format!("Student_{}", i % 20).into(),
                    format!("item_{}", i % 5).into(),
                ])
                .unwrap();
        }
        db.add_table(expenses).unwrap();
        db.add_table(orders).unwrap();
        db
    }

    #[test]
    fn key_tokens_match_across_tables() {
        let db = student_db();
        let t = textify(&db, &TextifyConfig::default());
        // "student_3" must appear in both tables' token streams — and since
        // the symbol table is shared, as the *same* TokenId.
        let id = t.symbols.lookup("student_3").expect("token interned");
        let has = |ti: usize| {
            t.tables[ti]
                .rows
                .iter()
                .any(|r| r.tokens.iter().any(|o| o.token == id))
        };
        assert!(has(0));
        assert!(has(1));
    }

    #[test]
    fn numeric_tokens_are_binned_and_prefixed() {
        let db = student_db();
        let t = textify(
            &db,
            &TextifyConfig {
                bin_count: 5,
                ..Default::default()
            },
        );
        let total_tokens: Vec<&str> = t.tables[0]
            .rows
            .iter()
            .flat_map(|r| r.tokens.iter())
            .map(|o| t.token_str(o.token))
            .filter(|s| s.starts_with("total#"))
            .collect();
        assert_eq!(total_tokens.len(), 20);
        // At most 5 distinct bin tokens.
        let distinct: std::collections::HashSet<_> = total_tokens.iter().collect();
        assert!(distinct.len() <= 5);
    }

    #[test]
    fn nulls_emit_shared_sentinel() {
        let mut db = Database::new();
        let mut t = Table::new("t", vec!["a", "b"]);
        t.push_row(vec![Value::Null, "x".into()]).unwrap();
        t.push_row(vec!["y".into(), Value::Null]).unwrap();
        db.add_table(t).unwrap();
        let tok = textify(&db, &TextifyConfig::default());
        let all: Vec<_> = tok.tables[0]
            .rows
            .iter()
            .flat_map(|r| r.tokens.iter())
            .filter(|o| tok.token_str(o.token) == "null")
            .map(|o| o.attr)
            .collect();
        // "null" appears under both attributes -> voting can detect it.
        assert_eq!(all.len(), 2);
        assert_ne!(all[0], all[1]);
    }

    #[test]
    fn attribute_ids_are_table_qualified() {
        let db = student_db();
        let t = textify(&db, &TextifyConfig::default());
        assert_eq!(t.attributes.len(), 5);
        assert!(t.attributes.contains(&"expenses.name".to_owned()));
        assert!(t.attributes.contains(&"orders.name".to_owned()));
        // Same token under the two name columns carries different attr ids.
        let e = t.encoder("expenses", "name").unwrap().attr;
        let o = t.encoder("orders", "name").unwrap().attr;
        assert_ne!(e, o);
    }

    #[test]
    fn encoder_quantizes_unseen_values() {
        let db = student_db();
        let t = textify(
            &db,
            &TextifyConfig {
                bin_count: 5,
                ..Default::default()
            },
        );
        let enc = t.encoder("expenses", "total").unwrap();
        // An unseen huge value clamps into the last bin.
        let toks = enc.encode(&Value::Float(1e9));
        assert_eq!(toks.len(), 1);
        assert!(toks[0].starts_with("total#"));
    }

    #[test]
    fn list_cells_emit_multiple_tokens() {
        let mut db = Database::new();
        let mut t = Table::new("t", vec!["tags"]);
        for i in 0..10 {
            t.push_row(vec![format!("a{i}, b{i}", i = i % 3).into()])
                .unwrap();
        }
        db.add_table(t).unwrap();
        let tok = textify(&db, &TextifyConfig::default());
        assert_eq!(tok.tables[0].rows[0].tokens.len(), 2);
    }

    #[test]
    fn same_named_columns_share_bins() {
        let mut db = Database::new();
        let mut a = Table::new("a", vec!["amount"]);
        let mut b = Table::new("b", vec!["amount"]);
        for i in 0..30 {
            a.push_row(vec![Value::Float(f64::from(i) + 0.5)]).unwrap();
            b.push_row(vec![Value::Float(f64::from(i) + 0.5)]).unwrap();
        }
        db.add_table(a).unwrap();
        db.add_table(b).unwrap();
        let tok = textify(
            &db,
            &TextifyConfig {
                bin_count: 4,
                ..Default::default()
            },
        );
        // Identical values in the two tables produce identical tokens.
        assert_eq!(
            tok.tables[0].rows[7].tokens[0].token,
            tok.tables[1].rows[7].tokens[0].token
        );
    }

    #[test]
    fn total_token_count() {
        let db = student_db();
        let t = textify(&db, &TextifyConfig::default());
        // 20 rows x 3 cols + 40 rows x 2 cols = 140 occurrences.
        assert_eq!(t.total_tokens(), 140);
    }

    #[test]
    fn tokens_are_normalized() {
        assert_eq!(normalize_token("  HeLLo "), "hello");
    }

    #[test]
    fn symbol_table_is_dense_and_covers_all_tokens() {
        let db = student_db();
        let t = textify(&db, &TextifyConfig::default());
        let n = t.symbols.len();
        for (ti, table) in t.tables.iter().enumerate() {
            for (ri, row) in table.rows.iter().enumerate() {
                assert!(row.row_token.index() < n);
                assert_eq!(t.token_str(row.row_token), row_name(&t.tables[ti].name, ri));
                for o in &row.tokens {
                    assert!(o.token.index() < n);
                    assert!(!t.token_str(o.token).is_empty());
                }
            }
        }
        // Ids are contiguous: every id below len resolves.
        for i in 0..n {
            let _ = t.symbols.resolve(leva_interner::TokenId::from_index(i));
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let db = student_db();
        let seq = textify(
            &db,
            &TextifyConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [0, 2, 8] {
            let par = textify(
                &db,
                &TextifyConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(seq.attributes, par.attributes, "threads={threads}");
            assert_eq!(seq.tables.len(), par.tables.len(), "threads={threads}");
            // Interned ids — not just the strings behind them — must match,
            // i.e. id assignment is independent of the worker count.
            assert_eq!(seq.symbols.len(), par.symbols.len(), "threads={threads}");
            for (a, b) in seq.tables.iter().zip(&par.tables) {
                assert_eq!(a.name, b.name, "threads={threads}");
                assert_eq!(a.rows.len(), b.rows.len(), "threads={threads}");
                for (ra, rb) in a.rows.iter().zip(&b.rows) {
                    assert_eq!(ra.row_token, rb.row_token, "threads={threads}");
                    assert_eq!(ra.tokens, rb.tokens, "threads={threads}");
                }
            }
        }
    }
}
