//! Wire codecs for the two client protocols:
//!
//! * **JSON** — `POST /featurize` bodies and responses, built on the
//!   shared hand-rolled parser in `leva_embedding::json`.
//! * **Binary** — a compact length-prefixed framing for high-throughput
//!   clients, built on the bounded `leva_interner::codec` reader/writer.
//!   A binary session opens with the 4-byte magic [`BINARY_MAGIC`] and
//!   then exchanges `u32 len | payload` frames in both directions.
//!
//! Both protocols encode exactly the library's [`FeaturizeRequest`] type:
//! the server has no featurization entry point of its own.

use leva::{Featurization, FeaturizeRequest, IngestOptions, RowSource};
use leva_embedding::json;
use leva_interner::codec::{ByteReader, ByteWriter};
use leva_linalg::Matrix;
use leva_relational::{Table, Value};

use crate::engine::{AppendOutcome, FeatResponse, ServeError};

/// Magic bytes a client sends first to select the binary protocol on the
/// shared listen port (anything else is treated as HTTP).
pub const BINARY_MAGIC: [u8; 4] = *b"LVB1";

fn proto<T>(msg: impl Into<String>) -> Result<T, ServeError> {
    Err(ServeError::Protocol(msg.into()))
}

// ---------------------------------------------------------------------
// JSON protocol
// ---------------------------------------------------------------------

/// Parses a JSON featurize request:
///
/// ```json
/// {"feat": "row" | "row_plus_value",
///  "source": "base_all"
///          | {"base_rows": [0, 7, 12]}
///          | {"external": {"columns": ["a","b"], "rows": [[1,"x"], ...]}}}
/// ```
///
/// External cells map `null`→Null, booleans→Bool, strings→Text, and
/// numbers→Int when integral, Float otherwise.
pub fn parse_json_request(body: &str) -> Result<FeaturizeRequest, ServeError> {
    let doc = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return proto(format!("invalid JSON request: {e}")),
    };
    let feat = match doc.get("feat").and_then(json::Value::as_str) {
        Some("row") => Featurization::RowOnly,
        Some("row_plus_value") => Featurization::RowPlusValue,
        Some(other) => return proto(format!("unknown feat {other:?}")),
        None => return proto("missing string field \"feat\""),
    };
    let source = doc
        .get("source")
        .ok_or_else(|| ServeError::Protocol("missing field \"source\"".into()))?;
    if source.as_str() == Some("base_all") {
        return Ok(FeaturizeRequest::base_all(feat));
    }
    if let Some(rows) = source.get("base_rows") {
        let rows = rows
            .as_array()
            .ok_or_else(|| ServeError::Protocol("\"base_rows\" must be an array".into()))?;
        let mut indices = Vec::with_capacity(rows.len());
        for r in rows {
            let x = r
                .as_f64()
                .filter(|x| x.fract() == 0.0 && *x >= 0.0 && *x <= u32::MAX as f64)
                .ok_or_else(|| {
                    ServeError::Protocol("row indices must be non-negative integers".into())
                })?;
            indices.push(x as usize);
        }
        return Ok(FeaturizeRequest::base_rows(indices, feat));
    }
    if let Some(ext) = source.get("external") {
        let columns = ext
            .get("columns")
            .and_then(json::Value::as_array)
            .ok_or_else(|| ServeError::Protocol("\"external\" needs a \"columns\" array".into()))?;
        let names: Vec<String> = columns
            .iter()
            .map(|c| c.as_str().map(str::to_owned))
            .collect::<Option<_>>()
            .ok_or_else(|| ServeError::Protocol("column names must be strings".into()))?;
        let mut table = Table::new("request", names);
        let rows = ext
            .get("rows")
            .and_then(json::Value::as_array)
            .ok_or_else(|| ServeError::Protocol("\"external\" needs a \"rows\" array".into()))?;
        for row in rows {
            let cells = row
                .as_array()
                .ok_or_else(|| ServeError::Protocol("each row must be an array".into()))?;
            let values = cells.iter().map(json_cell_to_value).collect();
            if table.push_row(values).is_err() {
                return proto("row length does not match \"columns\"");
            }
        }
        return Ok(FeaturizeRequest::external(table, feat));
    }
    proto("\"source\" must be \"base_all\", {\"base_rows\":[..]}, or {\"external\":{..}}")
}

fn json_cell_to_value(cell: &json::Value) -> Value {
    match cell {
        json::Value::Null => Value::Null,
        json::Value::Bool(b) => Value::Bool(*b),
        json::Value::Str(s) => Value::text(s.clone()),
        json::Value::Num(x) => {
            if x.fract() == 0.0 && x.abs() < 9.0e15 {
                Value::Int(*x as i64)
            } else {
                Value::float(*x)
            }
        }
        // Nested containers have no relational meaning; treat as missing.
        json::Value::Arr(_) | json::Value::Obj(_) => Value::Null,
    }
}

/// Renders a featurize response as JSON:
/// `{"version":N,"checksum":N,"rows":N,"cols":N,"data":[[...],...]}`.
pub fn write_json_response(resp: &FeatResponse) -> String {
    let m = &resp.matrix;
    let mut out = String::with_capacity(32 + m.rows() * m.cols() * 12);
    out.push_str(&format!(
        "{{\"version\":{},\"checksum\":{},\"rows\":{},\"cols\":{},\"data\":[",
        resp.version,
        resp.checksum,
        m.rows(),
        m.cols()
    ));
    for r in 0..m.rows() {
        if r > 0 {
            out.push(',');
        }
        out.push('[');
        for (c, x) in m.row(r).iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            json::write_f64(&mut out, *x);
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// A parsed `/admin/append` body: the target table, the rows to absorb,
/// and the ingest contract to absorb them under.
pub struct AppendRequest {
    /// Table the rows are appended to.
    pub table: String,
    /// The rows, one `Value` per tokenized column.
    pub rows: Vec<Vec<Value>>,
    /// Strict (default) or lenient ingest normalization.
    pub options: IngestOptions,
}

/// Parses a JSON append request:
///
/// ```json
/// {"table": "orders",
///  "rows": [[17, "nyc", 129.5], [null, "sfo", 3]],
///  "mode": "strict" | "lenient"}
/// ```
///
/// Cells map like external featurize rows: `null`→Null, booleans→Bool,
/// strings→Text, numbers→Int when integral, Float otherwise. `mode` is
/// optional and defaults to strict (any ragged row rejects the batch).
pub fn parse_append_request(body: &str) -> Result<AppendRequest, ServeError> {
    let doc = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return proto(format!("invalid JSON request: {e}")),
    };
    let table = doc
        .get("table")
        .and_then(json::Value::as_str)
        .ok_or_else(|| ServeError::Protocol("missing string field \"table\"".into()))?
        .to_owned();
    let rows = doc
        .get("rows")
        .and_then(json::Value::as_array)
        .ok_or_else(|| ServeError::Protocol("missing array field \"rows\"".into()))?;
    let mut parsed = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row
            .as_array()
            .ok_or_else(|| ServeError::Protocol("each row must be an array".into()))?;
        parsed.push(cells.iter().map(json_cell_to_value).collect());
    }
    let options = match doc.get("mode").and_then(json::Value::as_str) {
        None | Some("strict") => IngestOptions::strict(),
        Some("lenient") => IngestOptions::lenient(),
        Some(other) => return proto(format!("unknown mode {other:?}")),
    };
    Ok(AppendRequest {
        table,
        rows: parsed,
        options,
    })
}

/// Renders an append outcome as JSON: the new model identity plus the
/// incremental-maintenance audit.
pub fn write_append_response(outcome: &AppendOutcome) -> String {
    let r = &outcome.report;
    format!(
        "{{\"version\":{},\"checksum\":{},\"rows_appended\":{},\
         \"new_value_nodes\":{},\"touched_value_nodes\":{},\
         \"clamped_numerics\":{},\"featurizer_slots_patched\":{},\
         \"retrofit\":{{\"updated\":{},\"seeded\":{},\"isolated\":{}}},\
         \"ingest\":{{\"rows_ragged\":{},\"cells_non_finite\":{},\"issues_total\":{}}}}}",
        outcome.version,
        outcome.checksum,
        r.rows_appended,
        r.new_value_nodes,
        r.touched_value_nodes,
        r.clamped_numerics,
        r.featurizer_slots_patched,
        r.retrofit.updated,
        r.retrofit.seeded,
        r.retrofit.isolated,
        r.ingest.rows_ragged,
        r.ingest.cells_non_finite,
        r.ingest.issues_total,
    )
}

/// Renders an error as the JSON error envelope `{"error":"..."}`.
pub fn write_json_error(err: &ServeError) -> String {
    let mut out = String::from("{\"error\":");
    json::write_string(&mut out, &err.to_string());
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// Binary protocol
// ---------------------------------------------------------------------

const SOURCE_BASE_ALL: u8 = 0;
const SOURCE_BASE_ROWS: u8 = 1;
const SOURCE_EXTERNAL: u8 = 2;

const CELL_NULL: u8 = 0;
const CELL_INT: u8 = 1;
const CELL_FLOAT: u8 = 2;
const CELL_TEXT: u8 = 3;
const CELL_BOOL: u8 = 4;
const CELL_TIMESTAMP: u8 = 5;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// Encodes a featurize request as one binary frame payload.
pub fn encode_binary_request(request: &FeaturizeRequest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(match request.feat {
        Featurization::RowOnly => 0,
        Featurization::RowPlusValue => 1,
    });
    match &request.source {
        RowSource::BaseAll => w.put_u8(SOURCE_BASE_ALL),
        RowSource::BaseRows(rows) => {
            w.put_u8(SOURCE_BASE_ROWS);
            w.put_u32(rows.len() as u32);
            for &r in rows {
                w.put_u64(r as u64);
            }
        }
        RowSource::External(table) => {
            w.put_u8(SOURCE_EXTERNAL);
            let cols = table.column_names();
            w.put_u32(cols.len() as u32);
            for c in &cols {
                w.put_str(c);
            }
            w.put_u32(table.row_count() as u32);
            for r in 0..table.row_count() {
                for c in 0..cols.len() {
                    match table.value(r, c).expect("in-bounds cell") {
                        Value::Null => w.put_u8(CELL_NULL),
                        Value::Int(x) => {
                            w.put_u8(CELL_INT);
                            w.put_u64(*x as u64);
                        }
                        Value::Float(x) => {
                            w.put_u8(CELL_FLOAT);
                            w.put_f64(*x);
                        }
                        Value::Text(s) => {
                            w.put_u8(CELL_TEXT);
                            w.put_str(s);
                        }
                        Value::Bool(b) => {
                            w.put_u8(CELL_BOOL);
                            w.put_u8(*b as u8);
                        }
                        Value::Timestamp(x) => {
                            w.put_u8(CELL_TIMESTAMP);
                            w.put_u64(*x as u64);
                        }
                    }
                }
            }
        }
    }
    w.into_bytes()
}

/// Decodes one binary request frame payload (bounded: every length is
/// checked against the remaining bytes before allocation).
pub fn decode_binary_request(payload: &[u8]) -> Result<FeaturizeRequest, ServeError> {
    let mut r = ByteReader::new(payload);
    let mut take = || -> Result<FeaturizeRequest, leva_interner::codec::DecodeError> {
        let feat = match r.take_u8()? {
            0 => Featurization::RowOnly,
            _ => Featurization::RowPlusValue,
        };
        let request = match r.take_u8()? {
            SOURCE_BASE_ALL => FeaturizeRequest::base_all(feat),
            SOURCE_BASE_ROWS => {
                let n = r.take_u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
                for _ in 0..n {
                    rows.push(r.take_u64()? as usize);
                }
                FeaturizeRequest::base_rows(rows, feat)
            }
            SOURCE_EXTERNAL => {
                let ncols = r.take_u32()? as usize;
                let mut names = Vec::with_capacity(ncols.min(r.remaining() / 4 + 1));
                for _ in 0..ncols {
                    names.push(r.take_str()?.to_owned());
                }
                let mut table = Table::new("request", names);
                let nrows = r.take_u32()? as usize;
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(match r.take_u8()? {
                            CELL_NULL => Value::Null,
                            CELL_INT => Value::Int(r.take_u64()? as i64),
                            CELL_FLOAT => Value::float(r.take_f64()?),
                            CELL_TEXT => Value::text(r.take_str()?.to_owned()),
                            CELL_BOOL => Value::Bool(r.take_u8()? != 0),
                            CELL_TIMESTAMP => Value::Timestamp(r.take_u64()? as i64),
                            _ => {
                                return Err(leva_interner::codec::DecodeError::Invalid(
                                    "unknown cell tag",
                                ))
                            }
                        });
                    }
                    table
                        .push_row(row)
                        .expect("row built with ncols cells matches table arity");
                }
                FeaturizeRequest::external(table, feat)
            }
            _ => {
                return Err(leva_interner::codec::DecodeError::Invalid(
                    "unknown source tag",
                ))
            }
        };
        Ok(request)
    };
    let request = take().map_err(|e| ServeError::Protocol(format!("bad binary request: {e}")))?;
    if !r.is_exhausted() {
        return proto("trailing bytes after binary request");
    }
    Ok(request)
}

/// Encodes a featurize result as one binary response frame payload.
pub fn encode_binary_response(result: &Result<FeatResponse, ServeError>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match result {
        Ok(resp) => {
            w.put_u8(STATUS_OK);
            w.put_u64(resp.version);
            w.put_u32(resp.checksum);
            w.put_u32(resp.matrix.rows() as u32);
            w.put_u32(resp.matrix.cols() as u32);
            for x in resp.matrix.data() {
                w.put_f64(*x);
            }
        }
        Err(e) => {
            w.put_u8(STATUS_ERR);
            w.put_str(&e.to_string());
        }
    }
    w.into_bytes()
}

/// Decodes a binary response frame payload (client side; used by the
/// tests and benchmarks).
pub fn decode_binary_response(payload: &[u8]) -> Result<FeatResponse, ServeError> {
    let mut r = ByteReader::new(payload);
    let status = r
        .take_u8()
        .map_err(|e| ServeError::Protocol(format!("bad binary response: {e}")))?;
    if status == STATUS_ERR {
        let msg = r
            .take_str()
            .map_err(|e| ServeError::Protocol(format!("bad binary error frame: {e}")))?;
        return proto(format!("server error: {msg}"));
    }
    let mut take = || -> Result<FeatResponse, leva_interner::codec::DecodeError> {
        let version = r.take_u64()?;
        let checksum = r.take_u32()?;
        let rows = r.take_u32()? as usize;
        let cols = r.take_u32()? as usize;
        let mut matrix = Matrix::zeros(rows, cols);
        for x in matrix.data_mut() {
            *x = r.take_f64()?;
        }
        Ok(FeatResponse {
            version,
            checksum,
            matrix,
        })
    };
    let resp = take().map_err(|e| ServeError::Protocol(format!("bad binary response: {e}")))?;
    if !r.is_exhausted() {
        return proto("trailing bytes after binary response");
    }
    Ok(resp)
}

/// Reads one `u32 len | payload` frame from a stream, bounding `len`.
pub fn read_frame(stream: &mut impl std::io::Read, max_len: usize) -> Result<Vec<u8>, ServeError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return proto(format!("frame of {len} bytes exceeds limit {max_len}"));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one `u32 len | payload` frame to a stream.
pub fn write_frame(stream: &mut impl std::io::Write, payload: &[u8]) -> Result<(), ServeError> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_request_round_trips_all_sources() {
        let r = parse_json_request(r#"{"feat":"row","source":"base_all"}"#).unwrap();
        assert!(matches!(r.source, RowSource::BaseAll));
        assert_eq!(r.feat, Featurization::RowOnly);

        let r = parse_json_request(r#"{"feat":"row_plus_value","source":{"base_rows":[3,1,4]}}"#)
            .unwrap();
        assert!(matches!(&r.source, RowSource::BaseRows(v) if v == &vec![3, 1, 4]));

        let body = r#"{"feat":"row","source":{"external":{
            "columns":["age","name","ok"],
            "rows":[[41,"ada",true],[null,"b",false],[2.5,"c",null]]}}}"#;
        let r = parse_json_request(body).unwrap();
        let RowSource::External(t) = &r.source else {
            panic!("expected external source")
        };
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(0, 0).unwrap(), &Value::Int(41));
        assert_eq!(t.value(2, 0).unwrap(), &Value::Float(2.5));
        assert_eq!(t.value(1, 2).unwrap(), &Value::Bool(false));
    }

    #[test]
    fn json_request_rejects_malformed_bodies() {
        for bad in [
            "not json",
            r#"{"source":"base_all"}"#,
            r#"{"feat":"diag","source":"base_all"}"#,
            r#"{"feat":"row"}"#,
            r#"{"feat":"row","source":{"base_rows":[-1]}}"#,
            r#"{"feat":"row","source":{"base_rows":[1.5]}}"#,
            r#"{"feat":"row","source":{"external":{"columns":["a"],"rows":[[1,2]]}}}"#,
        ] {
            assert!(
                matches!(parse_json_request(bad), Err(ServeError::Protocol(_))),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn append_request_parses_rows_and_mode() {
        let body = r#"{"table":"orders","rows":[[17,"nyc",129.5],[null,"sfo",true]]}"#;
        let req = parse_append_request(body).unwrap();
        assert_eq!(req.table, "orders");
        assert_eq!(req.rows.len(), 2);
        assert_eq!(req.rows[0][0], Value::Int(17));
        assert_eq!(req.rows[0][2], Value::Float(129.5));
        assert_eq!(req.rows[1][0], Value::Null);
        assert_eq!(req.rows[1][2], Value::Bool(true));
        assert_eq!(req.options.mode, leva::IngestMode::Strict);

        let body = r#"{"table":"t","rows":[],"mode":"lenient"}"#;
        let req = parse_append_request(body).unwrap();
        assert_eq!(req.options.mode, leva::IngestMode::Lenient);
    }

    #[test]
    fn append_request_rejects_malformed_bodies() {
        for bad in [
            "not json",
            r#"{"rows":[[1]]}"#,
            r#"{"table":"t"}"#,
            r#"{"table":"t","rows":[1]}"#,
            r#"{"table":"t","rows":[],"mode":"yolo"}"#,
        ] {
            assert!(
                matches!(parse_append_request(bad), Err(ServeError::Protocol(_))),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn binary_request_round_trips() {
        let mut table = Table::new("t", vec!["a", "b"]);
        table
            .push_row(vec![Value::Int(-7), Value::text("x")])
            .unwrap();
        table
            .push_row(vec![Value::Null, Value::Timestamp(123)])
            .unwrap();
        for request in [
            FeaturizeRequest::base_all(Featurization::RowOnly),
            FeaturizeRequest::base_rows(vec![9, 0, 2], Featurization::RowPlusValue),
            FeaturizeRequest::external(table, Featurization::RowOnly),
        ] {
            let bytes = encode_binary_request(&request);
            let back = decode_binary_request(&bytes).unwrap();
            assert_eq!(back.feat, request.feat);
            match (&back.source, &request.source) {
                (RowSource::BaseAll, RowSource::BaseAll) => {}
                (RowSource::BaseRows(a), RowSource::BaseRows(b)) => assert_eq!(a, b),
                (RowSource::External(a), RowSource::External(b)) => {
                    assert_eq!(a.row_count(), b.row_count());
                    assert_eq!(a.column_names(), b.column_names());
                    for r in 0..a.row_count() {
                        assert_eq!(a.row(r).unwrap(), b.row(r).unwrap());
                    }
                }
                other => panic!("source mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn binary_request_rejects_corruption() {
        let bytes = encode_binary_request(&FeaturizeRequest::base_rows(
            vec![1, 2, 3],
            Featurization::RowOnly,
        ));
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_binary_request(&bytes[..cut]).is_err());
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_binary_request(&padded).is_err());
    }

    #[test]
    fn binary_response_round_trips() {
        let mut matrix = Matrix::zeros(2, 3);
        matrix.row_mut(0).copy_from_slice(&[1.0, -2.5, f64::NAN]);
        matrix.row_mut(1).copy_from_slice(&[0.0, 1.0e300, -0.0]);
        let resp = FeatResponse {
            version: 7,
            checksum: 0xDEAD_BEEF,
            matrix,
        };
        let bytes = encode_binary_response(&Ok(resp));
        let back = decode_binary_response(&bytes).unwrap();
        assert_eq!(back.version, 7);
        assert_eq!(back.checksum, 0xDEAD_BEEF);
        assert!(back.matrix.row(0)[2].is_nan());
        assert_eq!(back.matrix.row(1)[1], 1.0e300);

        let err_bytes = encode_binary_response(&Err(ServeError::Overloaded));
        let err = decode_binary_response(&err_bytes).unwrap_err();
        assert!(err.to_string().contains("overloaded"));
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, 16).unwrap(), b"hello");
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor, 4),
            Err(ServeError::Protocol(_))
        ));
    }
}
