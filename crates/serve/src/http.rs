//! The network front end: one `TcpListener` multiplexing HTTP/1.1 and
//! the binary protocol (sniffed via a 4-byte `peek` for
//! [`BINARY_MAGIC`](crate::wire::BINARY_MAGIC)), a thread per connection
//! under a hard cap, and the admin surface (`/metrics`, `/healthz`,
//! `/admin/swap`, `/admin/append`, `/admin/shutdown`).
//!
//! Hand-rolled on `std::net` — the workspace builds offline with no HTTP
//! or async dependencies, and the server needs exactly six routes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::engine::{Engine, ServeError};
use crate::wire;

const MAX_HEAD_BYTES: usize = 16 << 10;

/// A running server: the listener thread plus a shared [`Engine`].
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the engine's configured address and starts accepting
    /// connections. Use port `0` to bind an ephemeral port (tests).
    pub fn start(engine: Arc<Engine>) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&engine.config().addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let acceptor = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if active.load(Ordering::SeqCst) >= engine.config().max_connections {
                        let _ = reject_busy(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop);
                    let active = Arc::clone(&active);
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &engine, &stop);
                        active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            })
        };
        Ok(Server {
            engine,
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (reports the OS-assigned port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's engine (for in-process swaps and metrics).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// True once `/admin/shutdown` was hit or [`Server::shutdown`] ran.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains the engine queue, and joins the acceptor.
    pub fn shutdown(&mut self) {
        request_stop(&self.stop, self.addr);
        self.engine.shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flags the acceptor to stop and wakes it with a throwaway connection
/// (the `incoming()` iterator only notices the flag on its next accept).
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    if stop.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = TcpStream::connect(addr);
}

fn reject_busy(mut stream: TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 0\r\nconnection: close\r\n\r\n",
    )
}

/// Handles one connection: sniffs the first four bytes to pick the
/// protocol, then loops over requests until close/shutdown.
fn serve_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
) -> Result<(), ServeError> {
    let mut magic = [0u8; 4];
    let mut seen = 0;
    // peek returns however many bytes are buffered; wait for all four
    // before deciding (a client may dribble the magic byte-by-byte).
    while seen < 4 {
        seen = stream.peek(&mut magic)?;
        if seen == 0 {
            return Ok(()); // closed before sending anything
        }
        if seen < 4 {
            if !magic[..seen]
                .iter()
                .zip(wire::BINARY_MAGIC)
                .all(|(a, b)| *a == b)
            {
                break; // already disagrees with the magic → HTTP
            }
            // Prefix matches but the client hasn't sent all four bytes;
            // peek returns immediately, so back off instead of spinning.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    if seen >= 4 && magic == wire::BINARY_MAGIC {
        serve_binary(stream, engine, stop)
    } else {
        serve_http(stream, engine, stop)
    }
}

/// The binary session loop: consume the magic, then answer
/// `u32 len | request` frames with `u32 len | response` frames.
fn serve_binary(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
) -> Result<(), ServeError> {
    let mut magic = [0u8; 4];
    stream.read_exact(&mut magic)?;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match wire::read_frame(&mut stream, engine.config().max_body_bytes) {
            Ok(p) => p,
            Err(ServeError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(()); // clean close between frames
            }
            Err(e) => return Err(e),
        };
        let result =
            wire::decode_binary_request(&payload).and_then(|request| engine.submit(request));
        let frame = wire::encode_binary_response(&result);
        wire::write_frame(&mut stream, &frame)?;
    }
}

struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// The HTTP session loop: parse request, route, respond, honor
/// keep-alive.
fn serve_http(
    stream: TcpStream,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
) -> Result<(), ServeError> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_http_request(&mut reader, engine.config().max_body_bytes) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean close between requests
            Err(e) => {
                let msg = wire::write_json_error(&e);
                write_http_response(&mut writer, 400, "application/json", msg.as_bytes(), false)?;
                return Err(e);
            }
        };
        let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
        match route(engine, stop, &request) {
            Route::Done(status, content_type, body) => {
                write_http_response(&mut writer, status, content_type, &body, keep_alive)?;
            }
            Route::Shutdown(body) => {
                // Respond first so the caller sees the acknowledgement,
                // then drain: close the engine queue and wake the
                // acceptor.
                write_http_response(&mut writer, 200, "application/json", &body, false)?;
                request_stop(stop, writer.local_addr()?);
                engine.shutdown();
                return Ok(());
            }
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

enum Route {
    Done(u16, &'static str, Vec<u8>),
    Shutdown(Vec<u8>),
}

fn route(engine: &Arc<Engine>, stop: &Arc<AtomicBool>, request: &HttpRequest) -> Route {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/featurize") => {
            let result = std::str::from_utf8(&request.body)
                .map_err(|_| ServeError::Protocol("request body is not UTF-8".into()))
                .and_then(wire::parse_json_request)
                .and_then(|req| engine.submit(req));
            match result {
                Ok(resp) => Route::Done(
                    200,
                    "application/json",
                    wire::write_json_response(&resp).into_bytes(),
                ),
                Err(e) => Route::Done(
                    error_status(&e),
                    "application/json",
                    wire::write_json_error(&e).into_bytes(),
                ),
            }
        }
        ("GET", "/metrics") => {
            Route::Done(200, "application/json", engine.metrics_json().into_bytes())
        }
        ("GET", "/healthz") => {
            let body = if stop.load(Ordering::SeqCst) {
                &b"{\"status\":\"stopping\"}"[..]
            } else {
                &b"{\"status\":\"ok\"}"[..]
            };
            Route::Done(200, "application/json", body.to_vec())
        }
        ("POST", "/admin/append") => {
            let result = std::str::from_utf8(&request.body)
                .map_err(|_| ServeError::Protocol("request body is not UTF-8".into()))
                .and_then(wire::parse_append_request)
                .and_then(|req| engine.append_rows(&req.table, &req.rows, &req.options));
            match result {
                Ok(outcome) => Route::Done(
                    200,
                    "application/json",
                    wire::write_append_response(&outcome).into_bytes(),
                ),
                Err(e) => Route::Done(
                    error_status(&e),
                    "application/json",
                    wire::write_json_error(&e).into_bytes(),
                ),
            }
        }
        ("POST", "/admin/swap") => match swap_body(engine, &request.body) {
            Ok((version, checksum)) => Route::Done(
                200,
                "application/json",
                format!("{{\"version\":{version},\"checksum\":{checksum}}}").into_bytes(),
            ),
            Err(e) => Route::Done(
                409,
                "application/json",
                wire::write_json_error(&e).into_bytes(),
            ),
        },
        ("POST", "/admin/shutdown") => Route::Shutdown(b"{\"status\":\"stopping\"}".to_vec()),
        _ => Route::Done(
            404,
            "application/json",
            b"{\"error\":\"no such route\"}".to_vec(),
        ),
    }
}

/// `/admin/swap` accepts either raw artifact bytes (octet-stream) or a
/// JSON `{"path": "..."}` pointing at an artifact file on the server.
fn swap_body(engine: &Arc<Engine>, body: &[u8]) -> Result<(u64, u32), ServeError> {
    if body.first() == Some(&b'{') {
        let text = std::str::from_utf8(body)
            .map_err(|_| ServeError::Protocol("swap body is not UTF-8".into()))?;
        let doc = leva_embedding::json::parse(text)
            .map_err(|e| ServeError::Protocol(format!("invalid swap JSON: {e}")))?;
        let path = doc
            .get("path")
            .and_then(leva_embedding::json::Value::as_str)
            .ok_or_else(|| ServeError::Protocol("swap JSON needs a \"path\" string".into()))?;
        engine.swap_from_path(std::path::Path::new(path))
    } else {
        engine.swap_from_bytes(body)
    }
}

fn error_status(e: &ServeError) -> u16 {
    match e {
        ServeError::Overloaded | ServeError::ShuttingDown => 503,
        ServeError::Protocol(_) | ServeError::Model(_) | ServeError::Artifact(_) => 400,
        ServeError::Io(_) => 500,
    }
}

/// Parses one HTTP/1.1 request. Returns `Ok(None)` on a clean EOF before
/// the first byte of a request.
fn read_http_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> Result<Option<HttpRequest>, ServeError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ServeError::Io(e)),
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("empty request line".into()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("request line has no path".into()))?
        .to_owned();
    let version = parts.next().unwrap_or("HTTP/1.1");
    let mut keep_alive = version != "HTTP/1.0";

    let mut headers = HashMap::new();
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ServeError::Protocol("request head too large".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            // Conflicting duplicate content-length headers are a request
            // smuggling vector (RFC 9112 §6.3) — last-wins silently picks
            // whichever copy an intermediary didn't see. Reject the
            // request; identical repeats are tolerated.
            if let Some(prev) = headers.get(&name) {
                if name == "content-length" && *prev != value {
                    return Err(ServeError::Protocol(
                        "conflicting content-length headers".into(),
                    ));
                }
            }
            headers.insert(name, value);
        }
    }
    if let Some(conn) = headers.get("connection") {
        keep_alive = !conn.eq_ignore_ascii_case("close");
    }
    let content_length = match headers.get("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ServeError::Protocol("bad content-length".into()))?,
        None => 0,
    };
    if content_length > max_body_bytes {
        return Err(ServeError::Protocol(format!(
            "body of {content_length} bytes exceeds limit {max_body_bytes}"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn write_http_response(
    writer: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Result<(), ServeError> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(())
}
