//! The coalescing engine: a bounded request queue drained by batch
//! workers that merge compatible featurize requests into single model
//! calls, executed against a hot-swappable model pinned per batch.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use leva::{
    AppendReport, ArtifactError, Featurization, FeaturizeRequest, IngestOptions, LevaError,
    LevaModel, RowSource,
};
use leva_linalg::Matrix;
use leva_relational::{Table, Value};

use crate::config::ServeConfig;
use crate::metrics::Metrics;
use crate::model::{ModelHandle, ServingModel};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The request queue is full; the client should back off and retry.
    Overloaded,
    /// The daemon is draining and no longer accepts requests.
    ShuttingDown,
    /// The model rejected the request (bad row index, schema mismatch …).
    Model(LevaError),
    /// A swap artifact failed to decode; the previous model keeps serving.
    Artifact(ArtifactError),
    /// A malformed wire request (bad JSON, bad binary frame, bad route).
    Protocol(String),
    /// An I/O failure on a socket or artifact file.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "server overloaded: request queue is full"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Model(e) => write!(f, "featurization failed: {e}"),
            ServeError::Artifact(e) => write!(f, "artifact rejected: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<LevaError> for ServeError {
    fn from(e: LevaError) -> Self {
        ServeError::Model(e)
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Outcome of an admin append: the identity of the patched model now
/// serving, plus what the incremental maintenance pass did.
#[derive(Debug)]
pub struct AppendOutcome {
    /// Swap epoch of the patched model.
    pub version: u64,
    /// Artifact checksum of the patched model (its base + deltas chain).
    pub checksum: u32,
    /// The model-level append report.
    pub report: AppendReport,
}

/// A completed featurization, stamped with the identity of the exact
/// model that produced it.
#[derive(Debug)]
pub struct FeatResponse {
    /// Swap epoch of the model that served this request.
    pub version: u64,
    /// Artifact checksum of that model.
    pub checksum: u32,
    /// The feature matrix, one row per requested row.
    pub matrix: Matrix,
}

struct Pending {
    request: FeaturizeRequest,
    tx: mpsc::SyncSender<Result<FeatResponse, ServeError>>,
    enqueued: Instant,
}

struct QueueState {
    items: VecDeque<Pending>,
    open: bool,
}

/// The request-coalescing serving engine. Cheap to share (`Arc`); the
/// HTTP/binary front ends and the admin endpoints all talk to this.
pub struct Engine {
    handle: ModelHandle,
    metrics: Metrics,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    config: ServeConfig,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes admin appends: each one is a clone-patch-swap against
    /// the current model, so two running concurrently would publish two
    /// divergent successors and silently drop one batch.
    append_lock: Mutex<()>,
}

impl Engine {
    /// Prepares `model` for serving (version 1) and spawns the configured
    /// batch workers.
    pub fn new(model: LevaModel, config: ServeConfig) -> Result<Arc<Engine>, ServeError> {
        config.validate().map_err(ServeError::Protocol)?;
        let engine = Arc::new(Engine {
            handle: ModelHandle::new(ServingModel::prepare(model, 1)),
            metrics: Metrics::new(),
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            config,
            workers: Mutex::new(Vec::new()),
            append_lock: Mutex::new(()),
        });
        let mut workers = Vec::new();
        for _ in 0..engine.config.batch_workers {
            let e = Arc::clone(&engine);
            workers.push(std::thread::spawn(move || e.worker_loop()));
        }
        *engine.workers.lock().unwrap_or_else(|e| e.into_inner()) = workers;
        Ok(engine)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The engine's metrics block.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The currently served model (pinned).
    pub fn current_model(&self) -> Arc<ServingModel> {
        self.handle.current()
    }

    /// Submits one featurize request and blocks until its batch executes.
    /// Fails fast with [`ServeError::Overloaded`] when the queue is full.
    pub fn submit(&self, request: FeaturizeRequest) -> Result<FeatResponse, ServeError> {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            if !q.open {
                return Err(ServeError::ShuttingDown);
            }
            if q.items.len() >= self.config.queue_capacity {
                return Err(ServeError::Overloaded);
            }
            q.items.push_back(Pending {
                request,
                tx,
                enqueued: Instant::now(),
            });
            self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        }
        self.not_empty.notify_one();
        match rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Decodes `bytes` as a model artifact and hot-swaps it in. On decode
    /// failure the current model keeps serving and the rejection is
    /// counted. Returns the `(version, checksum)` of the new model.
    pub fn swap_from_bytes(&self, bytes: &[u8]) -> Result<(u64, u32), ServeError> {
        let model = match LevaModel::from_bytes(bytes) {
            Ok(m) => m,
            Err(e) => {
                self.metrics.swaps_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Artifact(e));
            }
        };
        let stamp = self.handle.swap(model);
        self.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(stamp)
    }

    /// Memory-maps an artifact file and hot-swaps it in: the store is
    /// served zero-copy from the mapping (aligned v3 artifacts), so swap
    /// cost is independent of store size. The identity checksum is the
    /// CRC-32 of the *file bytes*, computed in one streaming pass — for
    /// an artifact written by [`LevaModel::save`] this equals the
    /// re-serialization checksum [`ServingModel::prepare`] would stamp,
    /// because the encoder is canonical. Legacy v1/v2 files decode
    /// through the heap path but still swap in with their file-byte
    /// checksum.
    pub fn swap_from_path(&self, path: &std::path::Path) -> Result<(u64, u32), ServeError> {
        let (checksum, artifact_bytes) = match hash_file(path) {
            Ok(stamp) => stamp,
            Err(e) => {
                self.metrics.swaps_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Io(e));
            }
        };
        let model = match LevaModel::load_mmap(path) {
            Ok(m) => m,
            Err(e) => {
                self.metrics.swaps_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Artifact(e));
            }
        };
        // The library defers the mapped STOR/GRPH CRCs to first featurize,
        // but a hot swap must never replace a healthy model with one whose
        // every request would fail a checksum — settle both now, while the
        // previous model still serves.
        if !model.store.verify_mapped() {
            self.metrics.swaps_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Artifact(ArtifactError::ChecksumMismatch {
                chunk: "STOR".to_owned(),
            }));
        }
        if !model.graph.verify_mapped() {
            self.metrics.swaps_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Artifact(ArtifactError::ChecksumMismatch {
                chunk: "GRPH".to_owned(),
            }));
        }
        let stamp = self.handle.swap_with(|version| {
            ServingModel::prepare_mapped(model, version, checksum, artifact_bytes)
        });
        self.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(stamp)
    }

    /// Appends `rows` to `table` of the served model without a refit:
    /// clones the pinned model (carrying its warm featurizer cache over),
    /// runs the library's incremental append — graph patch, embedding
    /// retrofit, targeted featurizer-slot patch — and hot-swaps the
    /// patched model in as the next epoch. In-flight batches keep their
    /// pinned pre-append model; the previous model serves throughout. On
    /// failure nothing is published and the rejection is counted.
    pub fn append_rows(
        &self,
        table: &str,
        rows: &[Vec<Value>],
        options: &IngestOptions,
    ) -> Result<AppendOutcome, ServeError> {
        let _guard = self.append_lock.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.handle.current();
        let mut model = current.model.clone();
        // The clone deliberately drops the featurizer cache; re-seed it
        // from the identical origin state so the append patches touched
        // slots instead of paying a full rebuild at swap time.
        model.warm_featurizer_from(&current.model);
        let report = match model.append_rows_with(table, rows, options) {
            Ok(report) => report,
            Err(e) => {
                self.metrics
                    .appends_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Model(e));
            }
        };
        let (version, checksum) = self.handle.swap(model);
        self.metrics.appends.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .rows_appended
            .fetch_add(report.rows_appended as u64, Ordering::Relaxed);
        Ok(AppendOutcome {
            version,
            checksum,
            report,
        })
    }

    /// Closes the queue, drains every pending request, and joins the
    /// batch workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.open = false;
        }
        self.not_empty.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for w in workers {
            let _ = w.join();
        }
    }

    /// Renders the `/metrics` JSON document.
    pub fn metrics_json(&self) -> String {
        use std::fmt::Write as _;
        let m = &self.metrics;
        let model = self.current_model();
        let latency = m.latency_snapshot();
        let batch = m.batch_rows_snapshot();
        let mut out = String::with_capacity(1024);
        out.push('{');
        let _ = write!(out, "\"uptime_s\":{:.3}", m.uptime_s());
        let _ = write!(out, ",\"requests\":{}", m.requests.load(Ordering::Relaxed));
        let _ = write!(out, ",\"rows\":{}", m.rows.load(Ordering::Relaxed));
        let _ = write!(out, ",\"errors\":{}", m.errors.load(Ordering::Relaxed));
        let _ = write!(out, ",\"rows_per_s\":{:.3}", m.rows_per_s());
        let _ = write!(
            out,
            ",\"latency_us\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            latency.count(),
            latency.quantile(0.50),
            latency.quantile(0.95),
            latency.quantile(0.99)
        );
        let _ = write!(out, ",\"batches\":{}", m.batches.load(Ordering::Relaxed));
        out.push_str(",\"batch_rows\":[");
        for (i, (lo, count)) in batch.buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{count}]");
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"queue_depth\":{}",
            m.queue_depth.load(Ordering::Relaxed)
        );
        let _ = write!(
            out,
            ",\"cache_bytes\":{}",
            model.model.featurizer().estimated_bytes()
        );
        // Resident vs mapped split of the embedding store and the graph
        // adjacency: a heap model reports everything resident; an
        // mmap-served model reports the f64 matrix and the CSR arrays as
        // mapped (the kernel pages them, they are not ours).
        let store = &model.model.store;
        let graph = &model.model.graph;
        let _ = write!(
            out,
            ",\"memory\":{{\"store_resident_bytes\":{},\"store_mapped_bytes\":{},\
             \"store_backing\":\"{}\",\"graph_resident_bytes\":{},\
             \"graph_mapped_bytes\":{},\"graph_backing\":\"{}\"}}",
            store.resident_bytes(),
            store.mapped_bytes(),
            if store.is_mapped() { "mapped" } else { "heap" },
            graph.resident_bytes(),
            graph.mapped_bytes(),
            if graph.is_mapped() { "mapped" } else { "heap" }
        );
        let _ = write!(
            out,
            ",\"model\":{{\"version\":{},\"checksum\":{},\"artifact_bytes\":{}}}",
            model.version, model.checksum, model.artifact_bytes
        );
        let disc = &model.model.config.discovery;
        let inj = model.model.discovery_injection;
        let _ = write!(
            out,
            ",\"discovery\":{{\"enabled\":{},\"threshold\":{},\"relationships\":{},\
             \"groups_applied\":{},\"edges_added\":{},\"value_nodes_added\":{}}}",
            disc.enabled,
            disc.threshold,
            model.model.discovered.len(),
            inj.groups_applied,
            inj.edges_added,
            inj.value_nodes_added
        );
        let _ = write!(out, ",\"swaps\":{}", m.swaps.load(Ordering::Relaxed));
        let _ = write!(
            out,
            ",\"swaps_rejected\":{}",
            m.swaps_rejected.load(Ordering::Relaxed)
        );
        let _ = write!(
            out,
            ",\"appends\":{{\"applied\":{},\"rejected\":{},\"rows\":{},\"pending_deltas\":{}}}",
            m.appends.load(Ordering::Relaxed),
            m.appends_rejected.load(Ordering::Relaxed),
            m.rows_appended.load(Ordering::Relaxed),
            model.model.deltas.len()
        );
        out.push('}');
        out
    }

    /// Rows a request contributes to the batch budget. `BaseAll` has no
    /// cheap count before a model is pinned, so it fills the batch.
    fn budget_rows(&self, request: &FeaturizeRequest) -> usize {
        request
            .row_count_hint()
            .unwrap_or(self.config.max_batch_rows)
            .max(1)
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let batch = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                while q.items.is_empty() && q.open {
                    q = self.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
                }
                let first = match q.items.pop_front() {
                    Some(p) => p,
                    None => return, // closed and drained
                };
                let deadline = Instant::now() + self.config.max_wait;
                let mut rows = self.budget_rows(&first.request);
                let mut batch = vec![first];
                // Hold the first request open for more arrivals until the
                // wait budget expires or the batch fills.
                loop {
                    if rows >= self.config.max_batch_rows {
                        break;
                    }
                    if let Some(next) = q.items.pop_front() {
                        rows += self.budget_rows(&next.request);
                        batch.push(next);
                        continue;
                    }
                    if !q.open {
                        break; // draining: flush immediately
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = self
                        .not_empty
                        .wait_timeout(q, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                    if timeout.timed_out() && q.items.is_empty() {
                        break;
                    }
                }
                batch
            };
            self.metrics
                .queue_depth
                .fetch_sub(batch.len() as u64, Ordering::Relaxed);
            // Pin one model for the whole batch: every response in it is
            // produced by, and stamped with, exactly this artifact even
            // if a swap lands mid-execution.
            let model = self.handle.current();
            self.execute(&model, batch);
        }
    }

    /// Executes one coalesced batch against a pinned model and delivers
    /// per-request responses.
    fn execute(&self, serving: &ServingModel, batch: Vec<Pending>) {
        // Group indices by merge key: base-table requests merge per
        // featurization; external tables additionally need an identical
        // column list.
        let mut groups: Vec<(Featurization, Option<Vec<String>>, Vec<usize>)> = Vec::new();
        for (i, p) in batch.iter().enumerate() {
            let cols = match &p.request.source {
                RowSource::External(t) => Some(
                    t.column_names()
                        .into_iter()
                        .map(str::to_owned)
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            };
            match groups
                .iter_mut()
                .find(|(f, c, _)| *f == p.request.feat && *c == cols)
            {
                Some((_, _, members)) => members.push(i),
                None => groups.push((p.request.feat, cols, vec![i])),
            }
        }

        let mut batch: Vec<Option<Pending>> = batch.into_iter().map(Some).collect();
        for (feat, cols, members) in groups {
            let pending: Vec<Pending> = members
                .into_iter()
                .map(|i| batch[i].take().expect("each request joins one group"))
                .collect();
            match cols {
                None => self.run_base_group(serving, feat, pending),
                Some(_) => self.run_external_group(serving, feat, pending),
            }
        }
    }

    /// Merges base-table requests (`BaseAll` + `BaseRows`) into one call.
    fn run_base_group(&self, serving: &ServingModel, feat: Featurization, group: Vec<Pending>) {
        let base_rows = serving.model.base_row_count();
        let row_lists: Vec<Vec<usize>> = group
            .iter()
            .map(|p| match &p.request.source {
                RowSource::BaseAll => (0..base_rows).collect(),
                RowSource::BaseRows(rows) => rows.clone(),
                RowSource::External(_) => unreachable!("external requests grouped separately"),
            })
            .collect();
        if group.len() == 1 {
            let p = group.into_iter().next().expect("len checked");
            self.respond_single(serving, p);
            return;
        }
        let merged: Vec<usize> = row_lists.iter().flatten().copied().collect();
        let total = merged.len();
        match serving
            .model
            .featurize(&FeaturizeRequest::base_rows(merged, feat))
        {
            Ok(matrix) => {
                self.metrics.batches.fetch_add(1, Ordering::Relaxed);
                self.metrics.record_batch_rows(total as u64);
                let mut offset = 0;
                for (p, rows) in group.into_iter().zip(&row_lists) {
                    let slice = slice_rows(&matrix, offset, rows.len());
                    offset += rows.len();
                    self.deliver(serving, p, Ok(slice));
                }
            }
            // One bad row index poisons the merged call; retry each
            // request alone so only the offender gets the error.
            Err(_) => {
                for p in group {
                    self.respond_single(serving, p);
                }
            }
        }
    }

    /// Merges external-table requests with identical columns into one
    /// call over a concatenated table.
    fn run_external_group(&self, serving: &ServingModel, feat: Featurization, group: Vec<Pending>) {
        if group.len() == 1 {
            let p = group.into_iter().next().expect("len checked");
            self.respond_single(serving, p);
            return;
        }
        let columns: Vec<String> = match &group[0].request.source {
            RowSource::External(t) => t.column_names().into_iter().map(str::to_owned).collect(),
            _ => unreachable!("external group holds external requests"),
        };
        let mut merged = Table::new("coalesced_batch", columns);
        let mut row_counts = Vec::with_capacity(group.len());
        let mut merge_ok = true;
        'merge: for p in &group {
            let RowSource::External(t) = &p.request.source else {
                unreachable!("external group holds external requests")
            };
            row_counts.push(t.row_count());
            for r in 0..t.row_count() {
                let Ok(values) = t.row(r) else {
                    merge_ok = false;
                    break 'merge;
                };
                if merged.push_row(values).is_err() {
                    merge_ok = false;
                    break 'merge;
                }
            }
        }
        if !merge_ok {
            for p in group {
                self.respond_single(serving, p);
            }
            return;
        }
        let total = merged.row_count();
        match serving
            .model
            .featurize(&FeaturizeRequest::external(merged, feat))
        {
            Ok(matrix) => {
                self.metrics.batches.fetch_add(1, Ordering::Relaxed);
                self.metrics.record_batch_rows(total as u64);
                let mut offset = 0;
                for (p, rows) in group.into_iter().zip(row_counts) {
                    let slice = slice_rows(&matrix, offset, rows);
                    offset += rows;
                    self.deliver(serving, p, Ok(slice));
                }
            }
            Err(_) => {
                for p in group {
                    self.respond_single(serving, p);
                }
            }
        }
    }

    /// Runs one request un-merged (singleton group or merge fallback).
    fn respond_single(&self, serving: &ServingModel, p: Pending) {
        let result = serving.model.featurize(&p.request);
        if let Ok(m) = &result {
            self.metrics.batches.fetch_add(1, Ordering::Relaxed);
            self.metrics.record_batch_rows(m.rows() as u64);
        }
        self.deliver(serving, p, result);
    }

    /// Stamps and sends one response, recording latency and row/error
    /// counters.
    fn deliver(&self, serving: &ServingModel, p: Pending, result: Result<Matrix, LevaError>) {
        let elapsed_us = p.enqueued.elapsed().as_micros() as u64;
        self.metrics.record_latency_us(elapsed_us);
        let response = match result {
            Ok(matrix) => {
                self.metrics.record_rows(matrix.rows() as u64);
                Ok(FeatResponse {
                    version: serving.version,
                    checksum: serving.checksum,
                    matrix,
                })
            }
            Err(e) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Model(e))
            }
        };
        // A client that gave up (disconnected) is the only way this
        // fails; the batch must keep going.
        let _ = p.tx.send(response);
    }
}

/// CRC-32 and length of a file, computed in one buffered streaming pass
/// (no full read into memory — the mmap swap path must stay O(1) in
/// artifact size for *allocations*; the hash itself is a sequential
/// read).
fn hash_file(path: &std::path::Path) -> std::io::Result<(u32, usize)> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path)?;
    let mut crc = leva_interner::codec::Crc32::new();
    let mut len = 0usize;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok((crc.finish(), len));
        }
        crc.update(&buf[..n]);
        len += n;
    }
}

/// Copies `len` rows of `m` starting at `start` into a fresh matrix.
fn slice_rows(m: &Matrix, start: usize, len: usize) -> Matrix {
    let mut out = Matrix::zeros(len, m.cols());
    for i in 0..len {
        out.row_mut(i).copy_from_slice(m.row(start + i));
    }
    out
}
