//! Serving-daemon configuration: the coalescing, capacity, and protocol
//! knobs (DESIGN.md §6.12).

use std::time::Duration;

/// Configuration for the serving daemon and its coalescing engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port `0` asks the OS for an ephemeral
    /// port, the shape tests use).
    pub addr: String,
    /// Maximum rows accumulated into one coalesced featurize call before
    /// the batch flushes regardless of the wait budget.
    pub max_batch_rows: usize,
    /// How long a batch worker holds the first queued request open for
    /// more arrivals before flushing (the `max-wait-µs` knob; latency
    /// ceiling added by coalescing).
    pub max_wait: Duration,
    /// Bounded queue capacity in *requests*; arrivals beyond it are
    /// rejected with an overload error instead of growing memory.
    pub queue_capacity: usize,
    /// Number of batch-executor threads draining the queue. Each batch
    /// runs the model's own banded row parallelism, so one worker already
    /// uses every core; more workers trade coalescing opportunity for
    /// pipeline overlap.
    pub batch_workers: usize,
    /// Maximum accepted HTTP body / binary frame size in bytes (model
    /// artifacts arrive through `/admin/swap`, so this bounds swap size
    /// too).
    pub max_body_bytes: usize,
    /// Maximum concurrently served connections; excess connections get an
    /// immediate 503 and are closed.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            max_batch_rows: 512,
            max_wait: Duration::from_micros(2_000),
            queue_capacity: 4_096,
            batch_workers: 1,
            max_body_bytes: 256 << 20,
            max_connections: 256,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, mirroring `LevaConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch_rows == 0 {
            return Err("max_batch_rows must be at least 1".to_owned());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".to_owned());
        }
        if self.batch_workers == 0 {
            return Err("batch_workers must be at least 1".to_owned());
        }
        if self.max_body_bytes == 0 {
            return Err("max_body_bytes must be at least 1".to_owned());
        }
        if self.max_connections == 0 {
            return Err("max_connections must be at least 1".to_owned());
        }
        Ok(())
    }

    /// Sets the listen address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the coalescing wait budget in microseconds.
    pub fn with_max_wait_us(mut self, us: u64) -> Self {
        self.max_wait = Duration::from_micros(us);
        self
    }

    /// Sets the batch flush threshold in rows.
    pub fn with_max_batch_rows(mut self, rows: usize) -> Self {
        self.max_batch_rows = rows;
        self
    }

    /// Sets the number of batch-executor threads.
    pub fn with_batch_workers(mut self, workers: usize) -> Self {
        self.batch_workers = workers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(ServeConfig::default()
            .with_max_batch_rows(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_batch_workers(0)
            .validate()
            .is_err());
        let c = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
