//! Serving metrics: lock-free counters plus power-of-two-bucket
//! histograms for latency and coalesced batch sizes, rendered as the
//! `/metrics` JSON document.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Width of the [`RateWindow`] in seconds.
const RATE_WINDOW_S: u64 = 10;

/// Sliding-window event rate: per-second row counts over the trailing
/// [`RATE_WINDOW_S`] seconds.
///
/// The daemon originally reported `rows / uptime`, a *lifetime* average:
/// after any idle gap the gauge decayed toward zero even while the
/// server was actively serving, and a long-lived process could never
/// show its current throughput. The window keeps at most one bucket per
/// second, so memory is bounded by the window width and both record and
/// read are O(window).
struct RateWindow {
    /// `(second, rows)` buckets, seconds strictly increasing. Only
    /// buckets newer than `now - RATE_WINDOW_S` are retained.
    buckets: Mutex<VecDeque<(u64, u64)>>,
}

impl RateWindow {
    fn new() -> Self {
        Self {
            buckets: Mutex::new(VecDeque::new()),
        }
    }

    /// Adds `rows` to the bucket for second `now_s`, evicting buckets
    /// that have slid out of the window.
    fn record_at(&self, now_s: u64, rows: u64) {
        let mut b = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        while b
            .front()
            .is_some_and(|&(sec, _)| sec + RATE_WINDOW_S <= now_s)
        {
            b.pop_front();
        }
        match b.back_mut() {
            Some((sec, count)) if *sec == now_s => *count += rows,
            _ => b.push_back((now_s, rows)),
        }
    }

    /// Rows per second over the trailing window ending at `now_s`. The
    /// denominator is the number of whole seconds actually observed
    /// (capped at the window width), so a server younger than the window
    /// is not under-reported.
    fn rate_at(&self, now_s: u64) -> f64 {
        let b = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let rows: u64 = b
            .iter()
            .filter(|&&(sec, _)| sec + RATE_WINDOW_S > now_s && sec <= now_s)
            .map(|&(_, count)| count)
            .sum();
        let span = RATE_WINDOW_S.min(now_s + 1);
        rows as f64 / span as f64
    }
}

/// Histogram over `u64` samples with power-of-two buckets: bucket `0`
/// holds the value `0`, bucket `k` (k ≥ 1) holds values in
/// `[2^(k-1), 2^k)`. Quantiles report the *upper bound* of the bucket the
/// quantile falls in, which is exact enough for latency percentiles and
/// keeps recording to two atomic-free loads under a short lock.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; 64],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: [0; 64],
            total: 0,
        }
    }
}

impl LogHistogram {
    /// Bucket index of `value`: `0` for the value 0, else
    /// `64 − leading_zeros(value)`, which maps `[2^(k−1), 2^k)` to bucket
    /// `k`. The raw index reaches 64 for values ≥ 2^63; [`Self::record`]
    /// saturates those into bucket 63, so the top bucket semantically
    /// covers `[2^62, ∞)` — an acceptable distortion for µs latencies,
    /// which a sane clock never pushes past 2^62.
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value).min(63)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`, or
    /// `0` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if k == 0 { 0 } else { 1u64 << k };
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k <= 1 { k as u64 } else { 1u64 << (k - 1) }, c))
            .collect()
    }
}

/// All counters and histograms the daemon exposes on `/metrics`.
pub struct Metrics {
    started: Instant,
    /// Featurize requests accepted into the queue.
    pub requests: AtomicU64,
    /// Total feature rows produced.
    pub rows: AtomicU64,
    /// Requests that completed with an error.
    pub errors: AtomicU64,
    /// Coalesced featurize calls executed.
    pub batches: AtomicU64,
    /// Requests currently waiting in the queue.
    pub queue_depth: AtomicU64,
    /// Successful hot swaps.
    pub swaps: AtomicU64,
    /// Swap attempts rejected (corrupt or unreadable artifact).
    pub swaps_rejected: AtomicU64,
    /// Admin appends applied (each publishes a patched model epoch).
    pub appends: AtomicU64,
    /// Admin appends rejected (unknown table, arity mismatch …).
    pub appends_rejected: AtomicU64,
    /// Total rows absorbed through admin appends.
    pub rows_appended: AtomicU64,
    latency_us: Mutex<LogHistogram>,
    batch_rows: Mutex<LogHistogram>,
    rate: RateWindow,
}

impl Metrics {
    /// Creates a zeroed metrics block with the uptime clock started now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swaps_rejected: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            appends_rejected: AtomicU64::new(0),
            rows_appended: AtomicU64::new(0),
            latency_us: Mutex::new(LogHistogram::default()),
            batch_rows: Mutex::new(LogHistogram::default()),
            rate: RateWindow::new(),
        }
    }

    /// Records `n` served feature rows: bumps the lifetime counter and
    /// the sliding rate window in one call.
    pub fn record_rows(&self, n: u64) {
        self.rows.fetch_add(n, Ordering::Relaxed);
        self.rate.record_at(self.started.elapsed().as_secs(), n);
    }

    /// Records one end-to-end request latency (clamped to ≥ 1 µs so the
    /// reported percentiles are never zero).
    pub fn record_latency_us(&self, us: u64) {
        self.latency_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(us.max(1));
    }

    /// Records the row count of one coalesced featurize call.
    pub fn record_batch_rows(&self, rows: u64) {
        self.batch_rows
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(rows);
    }

    /// Snapshot of the latency histogram.
    pub fn latency_snapshot(&self) -> LogHistogram {
        self.latency_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot of the batch-size histogram.
    pub fn batch_rows_snapshot(&self) -> LogHistogram {
        self.batch_rows
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Seconds since the metrics block was created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Rows served per second over the trailing ten-second window.
    ///
    /// This is a *current-throughput* gauge, not a lifetime average: an
    /// idle stretch lets it fall to zero once the window drains, and it
    /// immediately reflects new traffic — a multi-day uptime no longer
    /// drags a burst of fresh work down to a near-zero rate.
    pub fn rows_per_s(&self) -> f64 {
        self.rate.rate_at(self.started.elapsed().as_secs())
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        // Nine samples land in the [1,2) bucket → p50 reports its upper
        // bound; the single 100 lands in [64,128) → p99 reports 128.
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.99), 128);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(1, 9), (64, 1)]);
    }

    /// The bucket map at its boundary values: 0 is its own bucket, 1
    /// opens bucket 1, every exact power of two opens the next bucket,
    /// and `2^k − 1` stays in the bucket below it.
    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 1);
        for k in 1..63u32 {
            let pow = 1u64 << k;
            // 2^k is the *first* value of bucket k+1 …
            assert_eq!(LogHistogram::bucket(pow), k as usize + 1, "2^{k}");
            // … and 2^k − 1 the *last* value of bucket k.
            assert_eq!(LogHistogram::bucket(pow - 1), k as usize, "2^{k}-1");
        }
        assert_eq!(LogHistogram::bucket(u64::MAX), 64); // saturated on record
    }

    /// Values at or beyond 2^63 saturate into the top bucket instead of
    /// indexing out of bounds.
    #[test]
    fn huge_samples_saturate_into_the_top_bucket() {
        let mut h = LogHistogram::default();
        h.record(1u64 << 63);
        h.record(u64::MAX);
        h.record((1u64 << 62) + 1); // genuinely belongs to bucket 63
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), vec![(1u64 << 62, 3)]);
        assert_eq!(h.quantile(1.0), 1u64 << 63);
    }

    #[test]
    fn zero_bucket_is_distinct() {
        let mut h = LogHistogram::default();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.buckets(), vec![(0, 1)]);
    }

    #[test]
    fn latency_is_clamped_nonzero() {
        let m = Metrics::new();
        m.record_latency_us(0);
        assert_eq!(m.latency_snapshot().quantile(0.5), 2);
    }

    /// Regression for the lifetime-average bug: a long idle gap before a
    /// burst must not drag the reported rate toward zero. Under the old
    /// `rows / uptime` formula, 1000 rows served in the last second of a
    /// 1000-second uptime reported ~1 row/s; the window reports the
    /// burst's actual short-term rate.
    #[test]
    fn idle_gap_does_not_drag_rate_to_zero() {
        let w = RateWindow::new();
        w.record_at(1000, 1000);
        let rate = w.rate_at(1000);
        assert!(
            rate >= 100.0,
            "burst after idle under-reported: {rate} rows/s"
        );
    }

    /// The converse: once traffic stops, the gauge drains to zero after
    /// the window slides past — it is a current-throughput gauge, not a
    /// cumulative average that stays inflated forever.
    #[test]
    fn rate_drains_after_window_slides_past() {
        let w = RateWindow::new();
        w.record_at(50, 500);
        assert!(w.rate_at(50) > 0.0);
        assert!(w.rate_at(50 + RATE_WINDOW_S - 1) > 0.0);
        assert_eq!(w.rate_at(50 + RATE_WINDOW_S), 0.0);
    }

    /// Steady traffic reports the per-second rate exactly, and same-second
    /// records coalesce into one bucket.
    #[test]
    fn steady_traffic_reports_per_second_rate() {
        let w = RateWindow::new();
        for sec in 0..100u64 {
            w.record_at(sec, 40);
            w.record_at(sec, 2); // same second → same bucket
        }
        assert_eq!(w.rate_at(99), 42.0);
        {
            let b = w.buckets.lock().unwrap();
            assert!(
                b.len() as u64 <= RATE_WINDOW_S,
                "eviction bounds memory: {} buckets",
                b.len()
            );
        }
        // A short stall only dilutes the window, it does not zero it.
        let stalled = w.rate_at(102);
        assert!(stalled > 0.0 && stalled < 42.0, "{stalled}");
    }

    /// A server younger than the window divides by observed seconds, not
    /// the full window width.
    #[test]
    fn young_server_is_not_under_reported() {
        let w = RateWindow::new();
        w.record_at(0, 100);
        w.record_at(1, 100);
        assert_eq!(w.rate_at(1), 100.0);
    }

    #[test]
    fn record_rows_feeds_total_and_window() {
        let m = Metrics::new();
        m.record_rows(7);
        m.record_rows(5);
        assert_eq!(m.rows.load(Ordering::Relaxed), 12);
        assert!(m.rows_per_s() > 0.0);
    }
}
