//! Serving metrics: lock-free counters plus power-of-two-bucket
//! histograms for latency and coalesced batch sizes, rendered as the
//! `/metrics` JSON document.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Histogram over `u64` samples with power-of-two buckets: bucket `0`
/// holds the value `0`, bucket `k` (k ≥ 1) holds values in
/// `[2^(k-1), 2^k)`. Quantiles report the *upper bound* of the bucket the
/// quantile falls in, which is exact enough for latency percentiles and
/// keeps recording to two atomic-free loads under a short lock.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; 64],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: [0; 64],
            total: 0,
        }
    }
}

impl LogHistogram {
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value).min(63)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`, or
    /// `0` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if k == 0 { 0 } else { 1u64 << k };
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k <= 1 { k as u64 } else { 1u64 << (k - 1) }, c))
            .collect()
    }
}

/// All counters and histograms the daemon exposes on `/metrics`.
pub struct Metrics {
    started: Instant,
    /// Featurize requests accepted into the queue.
    pub requests: AtomicU64,
    /// Total feature rows produced.
    pub rows: AtomicU64,
    /// Requests that completed with an error.
    pub errors: AtomicU64,
    /// Coalesced featurize calls executed.
    pub batches: AtomicU64,
    /// Requests currently waiting in the queue.
    pub queue_depth: AtomicU64,
    /// Successful hot swaps.
    pub swaps: AtomicU64,
    /// Swap attempts rejected (corrupt or unreadable artifact).
    pub swaps_rejected: AtomicU64,
    latency_us: Mutex<LogHistogram>,
    batch_rows: Mutex<LogHistogram>,
}

impl Metrics {
    /// Creates a zeroed metrics block with the uptime clock started now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swaps_rejected: AtomicU64::new(0),
            latency_us: Mutex::new(LogHistogram::default()),
            batch_rows: Mutex::new(LogHistogram::default()),
        }
    }

    /// Records one end-to-end request latency (clamped to ≥ 1 µs so the
    /// reported percentiles are never zero).
    pub fn record_latency_us(&self, us: u64) {
        self.latency_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(us.max(1));
    }

    /// Records the row count of one coalesced featurize call.
    pub fn record_batch_rows(&self, rows: u64) {
        self.batch_rows
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(rows);
    }

    /// Snapshot of the latency histogram.
    pub fn latency_snapshot(&self) -> LogHistogram {
        self.latency_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot of the batch-size histogram.
    pub fn batch_rows_snapshot(&self) -> LogHistogram {
        self.batch_rows
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Seconds since the metrics block was created.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Cumulative rows served per second of uptime.
    pub fn rows_per_s(&self) -> f64 {
        let up = self.uptime_s();
        if up <= 0.0 {
            0.0
        } else {
            self.rows.load(Ordering::Relaxed) as f64 / up
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        // Nine samples land in the [1,2) bucket → p50 reports its upper
        // bound; the single 100 lands in [64,128) → p99 reports 128.
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(0.99), 128);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(1, 9), (64, 1)]);
    }

    #[test]
    fn zero_bucket_is_distinct() {
        let mut h = LogHistogram::default();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.buckets(), vec![(0, 1)]);
    }

    #[test]
    fn latency_is_clamped_nonzero() {
        let m = Metrics::new();
        m.record_latency_us(0);
        assert_eq!(m.latency_snapshot().quantile(0.5), 2);
    }
}
