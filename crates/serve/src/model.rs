//! Hot-swappable model handle: an epoch-versioned `Arc` behind an
//! `RwLock`, so batch workers pin one consistent model for the lifetime
//! of a batch while swaps publish a replacement atomically.

use std::io;
use std::sync::{Arc, RwLock};

use leva::LevaModel;
use leva_interner::codec::Crc32;

/// `io::Write` sink that hashes and counts the stream without storing
/// it: lets [`ServingModel::prepare`] fingerprint an artifact via the
/// model's streaming encoder at O(chunk) memory instead of
/// materializing the full byte vector (which doubled peak RSS for
/// large models).
struct CrcCountingWriter {
    crc: Crc32,
    len: usize,
}

impl CrcCountingWriter {
    fn new() -> Self {
        Self {
            crc: Crc32::new(),
            len: 0,
        }
    }
}

impl io::Write for CrcCountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.crc.update(buf);
        self.len += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A fitted model prepared for serving: the model itself plus the
/// identity (version epoch + artifact checksum) stamped onto every
/// response produced from it.
pub struct ServingModel {
    /// The fitted pipeline artifact.
    pub model: LevaModel,
    /// Monotonically increasing swap epoch; the initially loaded model is
    /// version 1 and every successful swap increments it.
    pub version: u64,
    /// CRC-32 of the model's serialized artifact bytes — lets clients
    /// correlate a response with exactly one artifact even across swaps
    /// back and forth between the same two files.
    pub checksum: u32,
    /// Size of the serialized artifact in bytes (surfaced in `/metrics`).
    pub artifact_bytes: usize,
}

impl ServingModel {
    /// Prepares `model` for serving under the given epoch: streams the
    /// artifact encoding through a hashing sink to fingerprint it (no
    /// full serialized copy is ever held, so preparing a large model no
    /// longer doubles peak RSS) and warms the featurizer cache so the
    /// first request does not pay the cache build.
    pub fn prepare(model: LevaModel, version: u64) -> Self {
        let mut sink = CrcCountingWriter::new();
        // The sink never fails, and encoding is infallible once the
        // model exists, so the expect is unreachable in practice.
        model
            .save_to(&mut sink)
            .expect("hashing sink cannot fail and encoding is infallible");
        let checksum = sink.crc.finish();
        let artifact_bytes = sink.len;
        // Warm the serving cache before the model becomes visible to
        // workers; otherwise the first post-swap batch pays the build.
        let _ = model.featurizer();
        Self {
            model,
            version,
            checksum,
            artifact_bytes,
        }
    }

    /// Prepares a model loaded from a mapped artifact file
    /// ([`LevaModel::load_mmap`]) whose identity was already hashed from
    /// the file bytes themselves: re-encoding a mapped model would both
    /// defeat the O(1)-memory load and stamp a *re-serialized* checksum
    /// that need not match the file on disk. Still warms the featurizer
    /// cache like [`ServingModel::prepare`].
    pub fn prepare_mapped(
        model: LevaModel,
        version: u64,
        checksum: u32,
        artifact_bytes: usize,
    ) -> Self {
        let _ = model.featurizer();
        Self {
            model,
            version,
            checksum,
            artifact_bytes,
        }
    }
}

/// Shared, swappable pointer to the current [`ServingModel`].
///
/// Readers take a brief read lock only to clone the `Arc`; featurization
/// itself runs outside the lock, so an in-flight batch keeps its pinned
/// model alive (and consistent) even while a swap publishes a new one.
pub struct ModelHandle {
    current: RwLock<Arc<ServingModel>>,
}

impl ModelHandle {
    /// Wraps an already-prepared model.
    pub fn new(initial: ServingModel) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// Returns the current model, pinned: the caller's `Arc` stays valid
    /// across any number of concurrent swaps.
    pub fn current(&self) -> Arc<ServingModel> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Atomically replaces the served model, assigning it the next epoch.
    /// Returns the `(version, checksum)` stamped onto the new model.
    pub fn swap(&self, model: LevaModel) -> (u64, u32) {
        self.swap_with(|version| ServingModel::prepare(model, version))
    }

    /// Like [`ModelHandle::swap`] but lets the caller choose how the
    /// replacement is prepared for the next epoch — the mmap swap path
    /// uses this with [`ServingModel::prepare_mapped`] so a mapped model
    /// is never re-serialized just to stamp its identity.
    pub fn swap_with(&self, prepare: impl FnOnce(u64) -> ServingModel) -> (u64, u32) {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        let next = prepare(slot.version + 1);
        let stamp = (next.version, next.checksum);
        *slot = Arc::new(next);
        stamp
    }
}
