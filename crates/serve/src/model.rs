//! Hot-swappable model handle: an epoch-versioned `Arc` behind an
//! `RwLock`, so batch workers pin one consistent model for the lifetime
//! of a batch while swaps publish a replacement atomically.

use std::sync::{Arc, RwLock};

use leva::LevaModel;
use leva_interner::codec::crc32;

/// A fitted model prepared for serving: the model itself plus the
/// identity (version epoch + artifact checksum) stamped onto every
/// response produced from it.
pub struct ServingModel {
    /// The fitted pipeline artifact.
    pub model: LevaModel,
    /// Monotonically increasing swap epoch; the initially loaded model is
    /// version 1 and every successful swap increments it.
    pub version: u64,
    /// CRC-32 of the model's serialized artifact bytes — lets clients
    /// correlate a response with exactly one artifact even across swaps
    /// back and forth between the same two files.
    pub checksum: u32,
    /// Size of the serialized artifact in bytes (surfaced in `/metrics`).
    pub artifact_bytes: usize,
}

impl ServingModel {
    /// Prepares `model` for serving under the given epoch: serializes it
    /// once to fingerprint the artifact and warms the featurizer cache so
    /// the first request does not pay the cache build.
    pub fn prepare(model: LevaModel, version: u64) -> Self {
        let bytes = model.to_bytes();
        let checksum = crc32(&bytes);
        let artifact_bytes = bytes.len();
        drop(bytes);
        // Warm the serving cache before the model becomes visible to
        // workers; otherwise the first post-swap batch pays the build.
        let _ = model.featurizer();
        Self {
            model,
            version,
            checksum,
            artifact_bytes,
        }
    }
}

/// Shared, swappable pointer to the current [`ServingModel`].
///
/// Readers take a brief read lock only to clone the `Arc`; featurization
/// itself runs outside the lock, so an in-flight batch keeps its pinned
/// model alive (and consistent) even while a swap publishes a new one.
pub struct ModelHandle {
    current: RwLock<Arc<ServingModel>>,
}

impl ModelHandle {
    /// Wraps an already-prepared model.
    pub fn new(initial: ServingModel) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// Returns the current model, pinned: the caller's `Arc` stays valid
    /// across any number of concurrent swaps.
    pub fn current(&self) -> Arc<ServingModel> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Atomically replaces the served model, assigning it the next epoch.
    /// Returns the `(version, checksum)` stamped onto the new model.
    pub fn swap(&self, model: LevaModel) -> (u64, u32) {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        let next = ServingModel::prepare(model, slot.version + 1);
        let stamp = (next.version, next.checksum);
        *slot = Arc::new(next);
        stamp
    }
}
