//! # leva-serve
//!
//! A serving daemon for fitted Leva models (DESIGN.md §6.12). The
//! library pipeline ends at a [`LevaModel`](leva::LevaModel) artifact;
//! this crate keeps one resident and serves featurization over the
//! network:
//!
//! * **One entry point.** The server speaks exactly the library's
//!   [`FeaturizeRequest`](leva::FeaturizeRequest) type on the wire — as
//!   JSON (`POST /featurize`) and as a compact length-prefixed binary
//!   protocol ([`wire`]), multiplexed on one port by sniffing the
//!   4-byte [`BINARY_MAGIC`](wire::BINARY_MAGIC).
//! * **Request coalescing.** Concurrent requests land in a bounded
//!   queue; batch workers merge compatible requests (same featurization,
//!   same schema) into single model calls ([`Engine`]), amortizing
//!   per-call overhead while a `max_wait` knob bounds the added latency.
//! * **Hot model swap.** `/admin/swap` (or SIGHUP in the binary)
//!   atomically replaces the model ([`ModelHandle`]); in-flight batches
//!   finish on the model they pinned, every response is stamped with the
//!   artifact version + checksum that produced it, and a corrupt
//!   artifact is rejected while the old model keeps serving.
//! * **Incremental append.** `/admin/append` absorbs new rows into the
//!   served model without a refit (DESIGN.md §6.16): the engine clones
//!   the pinned model, runs the library's delta-ingestion path — graph
//!   patch, RETRO-style embedding retrofit, targeted featurizer-slot
//!   patch — and publishes the patched model as the next epoch while the
//!   previous one keeps serving.
//! * **Metrics.** `/metrics` reports latency percentiles, rows/s, the
//!   coalesced batch-size distribution, queue depth, serving-cache
//!   bytes, and swap/append counters ([`Metrics`]).
//!
//! Hand-rolled on `std::net` with zero new dependencies — the workspace
//! builds offline.

#![warn(missing_docs)]

mod config;
mod engine;
mod http;
mod metrics;
mod model;
pub mod wire;

pub use config::ServeConfig;
pub use engine::{AppendOutcome, Engine, FeatResponse, ServeError};
pub use http::Server;
pub use metrics::{LogHistogram, Metrics};
pub use model::{ModelHandle, ServingModel};
