//! End-to-end server smoke test: ephemeral port, JSON + binary protocol
//! round-trips, `/metrics` scrape, concurrent clients showing request
//! coalescing, mid-load hot swap, and clean shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use leva::{Featurization, FeaturizeRequest, Leva, LevaConfig, LevaModel};
use leva_embedding::json;
use leva_interner::codec::crc32;
use leva_linalg::Matrix;
use leva_relational::{Database, Table, Value};
use leva_serve::{wire, Engine, ServeConfig, Server};

fn db(rows: usize, scale: f64) -> Database {
    let mut db = Database::new();
    let mut base = Table::new("base", vec!["id", "grp", "amount", "target"]);
    let mut aux = Table::new("aux", vec!["id", "tag"]);
    for i in 0..rows {
        base.push_row(vec![
            format!("e{i}").into(),
            ["a", "b", "c"][i % 3].into(),
            Value::Float(i as f64 * scale),
            Value::Int((i % 2) as i64),
        ])
        .unwrap();
        aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 5).into()])
            .unwrap();
    }
    db.add_table(base).unwrap();
    db.add_table(aux).unwrap();
    db
}

fn fit(database: &Database) -> LevaModel {
    Leva::with_config(LevaConfig::fast())
        .base_table("base")
        .target("target")
        .fit(database)
        .unwrap()
}

/// Minimal HTTP/1.1 client: one request per connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: leva\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let text_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body separator");
    let head = std::str::from_utf8(&raw[..text_end]).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    (status, raw[text_end + 4..].to_vec())
}

fn json_body(addr: SocketAddr, path: &str, body: &str) -> (u16, json::Value) {
    let (status, bytes) = http(addr, "POST", path, body.as_bytes());
    let doc = json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    (status, doc)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, json::Value) {
    let (status, bytes) = http(addr, "GET", path, b"");
    let doc = json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    (status, doc)
}

/// Asserts a JSON `data` array matches a matrix bitwise.
fn assert_json_matches(doc: &json::Value, want: &Matrix) {
    assert_eq!(doc.get("rows").unwrap().as_f64(), Some(want.rows() as f64));
    assert_eq!(doc.get("cols").unwrap().as_f64(), Some(want.cols() as f64));
    let data = doc.get("data").unwrap().as_array().unwrap();
    assert_eq!(data.len(), want.rows());
    for (r, row) in data.iter().enumerate() {
        let row = row.as_array().unwrap();
        assert_eq!(row.len(), want.cols());
        for (c, cell) in row.iter().enumerate() {
            let got = cell.as_f64_or_null().unwrap();
            let exp = want.row(r)[c];
            assert_eq!(got.to_bits(), exp.to_bits(), "cell ({r},{c})");
        }
    }
}

#[test]
fn server_smoke() {
    let model_a = fit(&db(24, 1.0));
    let model_b = fit(&db(24, 3.5));
    let bytes_b = model_b.to_bytes();
    let sum_a = crc32(&model_a.to_bytes());
    let sum_b = crc32(&bytes_b);
    assert_ne!(sum_a, sum_b);

    let probe = FeaturizeRequest::base_rows(vec![0, 5, 11], Featurization::RowOnly);
    let expect_a = model_a.featurize(&probe).unwrap();
    let expect_b = model_b.featurize(&probe).unwrap();

    let config = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_max_wait_us(4_000);
    let engine = Engine::new(model_a, config).unwrap();
    let mut server = Server::start(Arc::clone(&engine)).unwrap();
    let addr = server.local_addr();

    // --- health + 404 ----------------------------------------------
    let (status, doc) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    let (status, _) = get_json(addr, "/nope");
    assert_eq!(status, 404);

    // --- JSON round-trip -------------------------------------------
    let (status, doc) = json_body(
        addr,
        "/featurize",
        r#"{"feat":"row","source":{"base_rows":[0,5,11]}}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(1.0));
    assert_eq!(doc.get("checksum").unwrap().as_f64(), Some(sum_a as f64));
    assert_json_matches(&doc, &expect_a);

    // Malformed bodies are a 400 with an error envelope.
    let (status, doc) = json_body(addr, "/featurize", r#"{"feat":"nope"}"#);
    assert_eq!(status, 400);
    assert!(doc.get("error").is_some());

    // --- binary round-trip -----------------------------------------
    let mut bin = TcpStream::connect(addr).unwrap();
    bin.write_all(&wire::BINARY_MAGIC).unwrap();
    for _ in 0..2 {
        // Two requests on one session exercises frame reuse.
        let payload = wire::encode_binary_request(&probe);
        wire::write_frame(&mut bin, &payload).unwrap();
        let frame = wire::read_frame(&mut bin, 1 << 24).unwrap();
        let resp = wire::decode_binary_response(&frame).unwrap();
        assert_eq!(resp.version, 1);
        assert_eq!(resp.checksum, sum_a);
        assert_eq!(resp.matrix.rows(), expect_a.rows());
        for r in 0..expect_a.rows() {
            for (x, y) in resp.matrix.row(r).iter().zip(expect_a.row(r)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
    drop(bin);

    // --- concurrent clients: coalescing shows up in the histogram --
    let mut clients = Vec::new();
    for t in 0..8 {
        let body = if t % 2 == 0 {
            r#"{"feat":"row","source":{"base_rows":[0,5,11]}}"#
        } else {
            r#"{"feat":"row","source":{"base_rows":[3,4]}}"#
        };
        clients.push(std::thread::spawn(move || {
            for _ in 0..6 {
                let (status, doc) = json_body(addr, "/featurize", body);
                assert_eq!(status, 200);
                assert!(doc.get("error").is_none());
                assert_eq!(doc.get("checksum").unwrap().as_f64(), Some(sum_a as f64));
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    // --- /metrics scrape -------------------------------------------
    let (status, m) = get_json(addr, "/metrics");
    assert_eq!(status, 200);
    let requests = m.get("requests").unwrap().as_f64().unwrap();
    assert!(requests >= 51.0, "requests={requests}");
    let batches = m.get("batches").unwrap().as_f64().unwrap();
    assert!(batches >= 1.0);
    // Coalescing must have merged at least two requests into one model
    // call at least once: fewer batches than requests, and a histogram
    // bucket above the single-request row counts (max single = 3 rows).
    assert!(
        batches < requests,
        "no coalescing happened: batches={batches} requests={requests}"
    );
    let hist = m.get("batch_rows").unwrap().as_array().unwrap();
    let max_bucket = hist
        .iter()
        .map(|pair| pair.as_array().unwrap()[0].as_f64().unwrap())
        .fold(0.0_f64, f64::max);
    assert!(
        max_bucket >= 4.0,
        "batch-size histogram never exceeded one request: {max_bucket}"
    );
    assert!(
        m.get("latency_us")
            .unwrap()
            .get("p50")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    assert!(
        m.get("latency_us")
            .unwrap()
            .get("p99")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    assert!(m.get("rows_per_s").unwrap().as_f64().unwrap() > 0.0);
    assert!(m.get("cache_bytes").unwrap().as_f64().unwrap() > 0.0);
    let model_info = m.get("model").unwrap();
    assert_eq!(model_info.get("version").unwrap().as_f64(), Some(1.0));
    assert_eq!(
        model_info.get("checksum").unwrap().as_f64(),
        Some(sum_a as f64)
    );
    // Discovery telemetry: this model was fitted with discovery off, so
    // the config and injection counters all read zero/false.
    let disc = m.get("discovery").unwrap();
    assert_eq!(disc.get("enabled").unwrap().as_bool(), Some(false));
    assert_eq!(disc.get("relationships").unwrap().as_f64(), Some(0.0));
    assert_eq!(disc.get("edges_added").unwrap().as_f64(), Some(0.0));
    assert_eq!(disc.get("value_nodes_added").unwrap().as_f64(), Some(0.0));
    let disc_before_swap = format!("{disc:?}");

    // --- hot swap over HTTP ----------------------------------------
    let (status, doc) = http_swap(addr, &bytes_b);
    assert_eq!(status, 200);
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("checksum").unwrap().as_f64(), Some(sum_b as f64));

    let (status, doc) = json_body(
        addr,
        "/featurize",
        r#"{"feat":"row","source":{"base_rows":[0,5,11]}}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("checksum").unwrap().as_f64(), Some(sum_b as f64));
    assert_json_matches(&doc, &expect_b);

    // A corrupt artifact is rejected with 409 and serving continues.
    let mut corrupt = bytes_b.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    let (status, doc) = http_swap(addr, &corrupt);
    assert_eq!(status, 409);
    assert!(doc.get("error").is_some());
    let (status, doc) = json_body(
        addr,
        "/featurize",
        r#"{"feat":"row","source":{"base_rows":[0,5,11]}}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
    let (_, m) = get_json(addr, "/metrics");
    assert_eq!(m.get("swaps").unwrap().as_f64(), Some(1.0));
    assert_eq!(m.get("swaps_rejected").unwrap().as_f64(), Some(1.0));
    // The discovery block is a pure function of the active model's
    // artifact, so it survives the hot swap bitwise-unchanged (both
    // fixture models are fitted with discovery off).
    assert_eq!(
        format!("{:?}", m.get("discovery").unwrap()),
        disc_before_swap
    );

    // --- clean shutdown --------------------------------------------
    let (status, doc) = json_body(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("stopping"));
    server.shutdown();
    assert!(server.is_stopping());
    // Further submits through the engine are refused.
    assert!(engine
        .submit(FeaturizeRequest::base_all(Featurization::RowOnly))
        .is_err());
}

fn http_swap(addr: SocketAddr, artifact: &[u8]) -> (u16, json::Value) {
    let (status, bytes) = http(addr, "POST", "/admin/swap", artifact);
    let doc = json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    (status, doc)
}

/// Sends a raw, pre-formatted request head + body and returns the status.
fn raw_status(addr: SocketAddr, head: &str, body: &[u8]) -> u16 {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let text = std::str::from_utf8(&raw[..raw.len().min(64)]).unwrap();
    text.split_whitespace().nth(1).unwrap().parse().unwrap()
}

#[test]
fn conflicting_content_length_headers_are_rejected() {
    let model = fit(&db(12, 1.0));
    let config = ServeConfig::default().with_addr("127.0.0.1:0");
    let engine = Engine::new(model, config).unwrap();
    let mut server = Server::start(Arc::clone(&engine)).unwrap();
    let addr = server.local_addr();

    let body = br#"{"feat":"row","source":{"base_rows":[0]}}"#;

    // Two content-length headers that disagree: a smuggling-shaped
    // request. Last-wins would read 0 body bytes and leave the body to
    // be parsed as a second request — it must be a 400 instead.
    let head = format!(
        "POST /featurize HTTP/1.1\r\nhost: leva\r\ncontent-length: {}\r\n\
         content-length: 0\r\nconnection: close\r\n\r\n",
        body.len()
    );
    assert_eq!(raw_status(addr, &head, body), 400);

    // Identical repeats are tolerated (RFC 9112 permits folding them).
    let head = format!(
        "POST /featurize HTTP/1.1\r\nhost: leva\r\ncontent-length: {n}\r\n\
         content-length: {n}\r\nconnection: close\r\n\r\n",
        n = body.len()
    );
    assert_eq!(raw_status(addr, &head, body), 200);

    // The server survives the rejected request and keeps serving.
    let (status, _) = get_json(addr, "/healthz");
    assert_eq!(status, 200);

    engine.shutdown();
    server.shutdown();
}

#[test]
fn external_tables_round_trip_through_json() {
    let database = db(24, 1.0);
    let model = fit(&database);
    let external = database
        .table("base")
        .unwrap()
        .drop_columns(&["target"])
        .unwrap();
    let want = model
        .featurize(&FeaturizeRequest::external(
            external.clone(),
            Featurization::RowOnly,
        ))
        .unwrap();

    let engine = Engine::new(model, ServeConfig::default().with_addr("127.0.0.1:0")).unwrap();
    let mut server = Server::start(Arc::clone(&engine)).unwrap();
    let addr = server.local_addr();

    // Build the JSON request from the first three external rows.
    let mut body = String::from(r#"{"feat":"row","source":{"external":{"columns":["#);
    let cols = external.column_names();
    for (i, c) in cols.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        json::write_string(&mut body, c);
    }
    body.push_str(r#"],"rows":["#);
    for r in 0..3 {
        if r > 0 {
            body.push(',');
        }
        body.push('[');
        for (c, v) in external.row(r).unwrap().iter().enumerate() {
            if c > 0 {
                body.push(',');
            }
            match v {
                Value::Null => body.push_str("null"),
                Value::Int(x) => body.push_str(&x.to_string()),
                Value::Float(x) => json::write_f64(&mut body, *x),
                Value::Text(s) => json::write_string(&mut body, s),
                Value::Bool(b) => body.push_str(if *b { "true" } else { "false" }),
                Value::Timestamp(x) => body.push_str(&x.to_string()),
            }
        }
        body.push(']');
    }
    body.push_str("]}}}");

    let (status, doc) = json_body(addr, "/featurize", &body);
    assert_eq!(status, 200, "body: {body}");
    let data = doc.get("data").unwrap().as_array().unwrap();
    assert_eq!(data.len(), 3);
    for (r, row) in data.iter().enumerate() {
        for (c, cell) in row.as_array().unwrap().iter().enumerate() {
            assert_eq!(
                cell.as_f64_or_null().unwrap().to_bits(),
                want.row(r)[c].to_bits(),
                "cell ({r},{c})"
            );
        }
    }
    server.shutdown();
}

#[test]
fn admin_append_patches_the_served_model() {
    let model = fit(&db(24, 1.0));
    let expected = {
        let mut fresh = model.clone();
        fresh
            .append_rows("base", &[vec!["e24".into(), "a".into(), Value::Float(3.0)]])
            .unwrap();
        fresh
            .featurize(&FeaturizeRequest::base_rows(
                vec![24],
                Featurization::RowOnly,
            ))
            .unwrap()
    };

    let config = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_max_wait_us(2_000);
    let engine = Engine::new(model, config).unwrap();
    let mut server = Server::start(Arc::clone(&engine)).unwrap();
    let addr = server.local_addr();

    // A row past the fitted range is a 400 before the append lands.
    let (status, _) = json_body(
        addr,
        "/featurize",
        r#"{"feat":"row","source":{"base_rows":[24]}}"#,
    );
    assert_eq!(status, 400);

    // Append one row through the admin endpoint.
    let (status, doc) = json_body(
        addr,
        "/admin/append",
        r#"{"table":"base","rows":[["e24","a",3.0]]}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("rows_appended").unwrap().as_f64(), Some(1.0));
    let retrofit = doc.get("retrofit").unwrap();
    assert!(retrofit.get("updated").unwrap().as_f64().unwrap() >= 1.0);

    // The appended row now featurizes, bitwise equal to the library path.
    let (status, doc) = json_body(
        addr,
        "/featurize",
        r#"{"feat":"row","source":{"base_rows":[24]}}"#,
    );
    assert_eq!(status, 200, "appended row should serve");
    assert_eq!(doc.get("version").unwrap().as_f64(), Some(2.0));
    assert_json_matches(&doc, &expected);

    // Unknown tables are rejected without disturbing the served model.
    let (status, doc) = json_body(addr, "/admin/append", r#"{"table":"ghost","rows":[["x"]]}"#);
    assert_eq!(status, 400);
    assert!(doc.get("error").is_some());
    let (status, _) = json_body(
        addr,
        "/featurize",
        r#"{"feat":"row","source":{"base_rows":[24]}}"#,
    );
    assert_eq!(status, 200);

    // Metrics report the append counters and the pending delta chain.
    let (status, doc) = get_json(addr, "/metrics");
    assert_eq!(status, 200);
    let appends = doc.get("appends").unwrap();
    assert_eq!(appends.get("applied").unwrap().as_f64(), Some(1.0));
    assert_eq!(appends.get("rejected").unwrap().as_f64(), Some(1.0));
    assert_eq!(appends.get("rows").unwrap().as_f64(), Some(1.0));
    assert_eq!(appends.get("pending_deltas").unwrap().as_f64(), Some(1.0));

    server.shutdown();
}
