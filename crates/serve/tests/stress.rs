//! Hot-swap stress and fault-injection tests: threads hammer the
//! coalescing engine while the model is swapped underneath them, and
//! every response must be bitwise-consistent with exactly one artifact
//! version. No loom — plain threads against the real engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use leva::{Featurization, FeaturizeRequest, Leva, LevaConfig, LevaModel};
use leva_interner::codec::crc32;
use leva_linalg::Matrix;
use leva_relational::{Database, Table, Value};
use leva_serve::{Engine, ServeConfig, ServeError};

fn db(rows: usize, scale: f64) -> Database {
    let mut db = Database::new();
    let mut base = Table::new("base", vec!["id", "grp", "amount", "target"]);
    let mut aux = Table::new("aux", vec!["id", "tag"]);
    for i in 0..rows {
        base.push_row(vec![
            format!("e{i}").into(),
            ["a", "b", "c"][i % 3].into(),
            Value::Float(i as f64 * scale),
            Value::Int((i % 2) as i64),
        ])
        .unwrap();
        aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 5).into()])
            .unwrap();
    }
    db.add_table(base).unwrap();
    db.add_table(aux).unwrap();
    db
}

fn fit(database: &Database) -> LevaModel {
    Leva::with_config(LevaConfig::fast())
        .base_table("base")
        .target("target")
        .fit(database)
        .unwrap()
}

fn assert_bitwise(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.rows(), b.rows(), "{ctx}: row count");
    assert_eq!(a.cols(), b.cols(), "{ctx}: col count");
    for r in 0..a.rows() {
        for (x, y) in a.row(r).iter().zip(b.row(r)) {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: row {r}");
        }
    }
}

/// The fixed request set the hammer threads cycle through.
fn requests() -> Vec<FeaturizeRequest> {
    vec![
        FeaturizeRequest::base_rows(vec![0, 5, 11], Featurization::RowOnly),
        FeaturizeRequest::base_rows(vec![7], Featurization::RowPlusValue),
        FeaturizeRequest::base_rows(vec![2, 2, 19, 3], Featurization::RowOnly),
        FeaturizeRequest::base_all(Featurization::RowOnly),
    ]
}

#[test]
fn swaps_under_load_never_tear_responses() {
    // Two distinct artifacts; both models can serve the same request set.
    let model_a = fit(&db(24, 1.0));
    let model_b = fit(&db(24, 3.5));
    let bytes_a = model_a.to_bytes();
    let bytes_b = model_b.to_bytes();
    let sum_a = crc32(&bytes_a);
    let sum_b = crc32(&bytes_b);
    assert_ne!(sum_a, sum_b, "the two artifacts must be distinguishable");

    // Expected output per (checksum, request), computed before the engine
    // takes ownership. Featurization is deterministic, so any served
    // response must bitwise-match one of these.
    let reqs = requests();
    let mut expected: HashMap<(u32, usize), Matrix> = HashMap::new();
    for (i, r) in reqs.iter().enumerate() {
        expected.insert((sum_a, i), model_a.featurize(r).unwrap());
        expected.insert((sum_b, i), model_b.featurize(r).unwrap());
    }
    let expected = Arc::new(expected);

    let engine = Engine::new(
        model_a,
        ServeConfig::default()
            .with_max_wait_us(300)
            .with_max_batch_rows(64)
            .with_batch_workers(2),
    )
    .unwrap();

    // One version must never map to two checksums.
    let version_identity: Arc<Mutex<HashMap<u64, u32>>> = Arc::new(Mutex::new(HashMap::new()));
    let completed = Arc::new(AtomicU64::new(0));

    const THREADS: usize = 8;
    const ITERS: usize = 60;
    let mut hammers = Vec::new();
    for t in 0..THREADS {
        let engine = Arc::clone(&engine);
        let expected = Arc::clone(&expected);
        let version_identity = Arc::clone(&version_identity);
        let completed = Arc::clone(&completed);
        let reqs = requests();
        hammers.push(std::thread::spawn(move || {
            for i in 0..ITERS {
                let which = (t + i) % reqs.len();
                let resp = engine.submit(clone_request(&reqs[which])).unwrap();
                let want = expected
                    .get(&(resp.checksum, which))
                    .expect("response checksum matches a known artifact");
                assert_bitwise(&resp.matrix, want, "hammered response");
                let mut ids = version_identity.lock().unwrap();
                let prior = ids.insert(resp.version, resp.checksum);
                assert!(
                    prior.is_none() || prior == Some(resp.checksum),
                    "version {} served two different artifacts",
                    resp.version
                );
                completed.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Meanwhile: alternate swaps between the two artifacts, with a
    // corrupt artifact injected mid-stream.
    const SWAPS: u64 = 14;
    let mut corrupt = bytes_b.clone();
    let flip = corrupt.len() / 2;
    corrupt[flip] ^= 0xFF;
    for s in 0..SWAPS {
        let bytes = if s % 2 == 0 { &bytes_b } else { &bytes_a };
        engine.swap_from_bytes(bytes).unwrap();
        if s == SWAPS / 2 {
            // Fault injection: the corrupt artifact must be rejected and
            // the current model must keep serving.
            let err = engine.swap_from_bytes(&corrupt).unwrap_err();
            assert!(matches!(err, ServeError::Artifact(_)), "got: {err}");
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    for h in hammers {
        h.join().unwrap();
    }
    assert_eq!(
        completed.load(Ordering::Relaxed),
        (THREADS * ITERS) as u64,
        "every request must get a response despite the swap storm"
    );

    let m = engine.metrics();
    assert_eq!(m.swaps.load(Ordering::Relaxed), SWAPS);
    assert_eq!(m.swaps_rejected.load(Ordering::Relaxed), 1);
    assert_eq!(m.errors.load(Ordering::Relaxed), 0);
    assert_eq!(m.requests.load(Ordering::Relaxed), (THREADS * ITERS) as u64);

    // Versions observed by hammers are a subset of 1..=SWAPS+1 and each
    // maps to exactly one checksum (asserted inline above).
    let ids = version_identity.lock().unwrap();
    assert!(!ids.is_empty());
    for (&version, &checksum) in ids.iter() {
        assert!((1..=SWAPS + 1).contains(&version));
        assert!(checksum == sum_a || checksum == sum_b);
    }

    engine.shutdown();
    let err = engine
        .submit(FeaturizeRequest::base_all(Featurization::RowOnly))
        .unwrap_err();
    assert!(matches!(err, ServeError::ShuttingDown));
}

#[test]
fn corrupt_initial_class_of_artifacts_all_rejected() {
    let model = fit(&db(16, 1.0));
    let good = model.to_bytes();
    let engine = Engine::new(model, ServeConfig::default()).unwrap();
    let before = engine.current_model().checksum;

    // Truncation, magic damage, and mid-stream bit flips must all be
    // rejected without disturbing the serving model.
    let mut cases: Vec<Vec<u8>> = vec![
        Vec::new(),
        good[..3].to_vec(),
        good[..good.len() / 2].to_vec(),
    ];
    let mut flipped = good.clone();
    flipped[0] ^= 0xFF;
    cases.push(flipped);
    let mut flipped = good.clone();
    let mid = flipped.len() * 3 / 4;
    flipped[mid] ^= 0x01;
    cases.push(flipped);

    for (i, bad) in cases.iter().enumerate() {
        assert!(
            engine.swap_from_bytes(bad).is_err(),
            "corrupt artifact {i} was accepted"
        );
        assert_eq!(
            engine.current_model().checksum,
            before,
            "corrupt artifact {i} disturbed the serving model"
        );
        let resp = engine
            .submit(FeaturizeRequest::base_rows(vec![1], Featurization::RowOnly))
            .unwrap();
        assert_eq!(resp.checksum, before);
        assert_eq!(resp.version, 1);
    }
    assert_eq!(
        engine.metrics().swaps_rejected.load(Ordering::Relaxed),
        cases.len() as u64
    );
    assert_eq!(engine.metrics().swaps.load(Ordering::Relaxed), 0);
    engine.shutdown();
}

/// `FeaturizeRequest` is deliberately plain data; clone it by hand so
/// the test does not require `Clone` on the public type.
fn clone_request(r: &FeaturizeRequest) -> FeaturizeRequest {
    match &r.source {
        leva::RowSource::BaseAll => FeaturizeRequest::base_all(r.feat),
        leva::RowSource::BaseRows(rows) => FeaturizeRequest::base_rows(rows.clone(), r.feat),
        leva::RowSource::External(t) => FeaturizeRequest::external(t.clone(), r.feat),
    }
}
