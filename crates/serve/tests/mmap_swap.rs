//! Hot-swap from a memory-mapped artifact file: the swapped-in model
//! serves bitwise-identical features from the mapping, `/metrics`
//! reports the resident/mapped split, and corrupt files are rejected
//! while the previous model keeps serving.

use leva::{Featurization, FeaturizeRequest, Leva, LevaConfig, LevaModel};
use leva_interner::codec::crc32;
use leva_relational::{Database, Table, Value};
use leva_serve::{Engine, ServeConfig, ServeError};

fn db(rows: usize, scale: f64) -> Database {
    let mut db = Database::new();
    let mut base = Table::new("base", vec!["id", "grp", "amount", "target"]);
    let mut aux = Table::new("aux", vec!["id", "tag"]);
    for i in 0..rows {
        base.push_row(vec![
            format!("e{i}").into(),
            ["a", "b", "c"][i % 3].into(),
            Value::Float(i as f64 * scale),
            Value::Int((i % 2) as i64),
        ])
        .unwrap();
        aux.push_row(vec![format!("e{i}").into(), format!("t{}", i % 5).into()])
            .unwrap();
    }
    db.add_table(base).unwrap();
    db.add_table(aux).unwrap();
    db
}

fn fit(database: &Database) -> LevaModel {
    Leva::with_config(LevaConfig::fast())
        .base_table("base")
        .target("target")
        .fit(database)
        .unwrap()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "leva_serve_mmap_{}_{name}.leva",
        std::process::id()
    ));
    p
}

/// Byte range of the `STOR` chunk payload inside a v3 artifact
/// (header: magic 4 + version 4 + chunk count 4; chunk frame:
/// tag 4 + len u64 + crc u32 + pad u32 + pad bytes + payload).
fn stor_payload_range(bytes: &[u8]) -> std::ops::Range<usize> {
    let mut pos = 12;
    loop {
        assert!(pos + 20 <= bytes.len(), "ran off the artifact");
        let tag = &bytes[pos..pos + 4];
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let pad = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().unwrap()) as usize;
        let start = pos + 20 + pad;
        if tag == b"STOR" {
            return start..start + len;
        }
        pos = start + len;
    }
}

#[test]
fn mmap_swap_serves_bitwise_identical_features() {
    let model_a = fit(&db(24, 1.0));
    let model_b = fit(&db(24, 3.5));
    let probe = FeaturizeRequest::base_rows(vec![0, 5, 11], Featurization::RowPlusValue);
    let expect_b = model_b.featurize(&probe).unwrap();

    let path = temp_path("swap_ok");
    model_b.save(&path).unwrap();
    let file_bytes = std::fs::read(&path).unwrap();
    // The file checksum is also the re-serialization checksum: the
    // encoder is canonical, so both swap paths stamp the same identity.
    assert_eq!(crc32(&file_bytes), crc32(&model_b.to_bytes()));

    let engine = Engine::new(model_a, ServeConfig::default()).unwrap();
    let (version, checksum) = engine.swap_from_path(&path).unwrap();
    assert_eq!(version, 2);
    assert_eq!(checksum, crc32(&file_bytes));

    let current = engine.current_model();
    assert_eq!(current.artifact_bytes, file_bytes.len());
    if cfg!(target_endian = "little") {
        assert!(
            current.model.store.is_mapped(),
            "v3 artifact must serve zero-copy on little-endian hosts"
        );
        assert!(current.model.store.mapped_bytes() > 0);
    }

    let response = engine.submit(probe).unwrap();
    assert_eq!(response.version, 2);
    assert_eq!(response.checksum, checksum);
    assert_eq!(response.matrix.rows(), expect_b.rows());
    for r in 0..expect_b.rows() {
        for (x, y) in response.matrix.row(r).iter().zip(expect_b.row(r)) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "mapped featurization differs from heap at row {r}"
            );
        }
    }

    let metrics = engine.metrics_json();
    assert!(metrics.contains("\"store_resident_bytes\""), "{metrics}");
    assert!(metrics.contains("\"store_mapped_bytes\""), "{metrics}");
    if cfg!(target_endian = "little") {
        assert!(
            metrics.contains("\"store_backing\":\"mapped\""),
            "{metrics}"
        );
    }

    engine.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_mapped_store_is_rejected_at_swap_time() {
    let model = fit(&db(24, 1.0));
    let path = temp_path("swap_corrupt");
    model.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let stor = stor_payload_range(&bytes);
    // Flip one bit deep inside the f64 matrix: framing stays valid, the
    // deferred STOR CRC is the only thing that can catch it.
    let target = stor.end - 9;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let engine = Engine::new(fit(&db(24, 1.0)), ServeConfig::default()).unwrap();
    let before = engine.current_model();
    let err = engine.swap_from_path(&path).unwrap_err();
    assert!(
        matches!(err, ServeError::Artifact(_)),
        "expected a typed artifact rejection, got: {err}"
    );
    // The previous model keeps serving under its original identity.
    let response = engine
        .submit(FeaturizeRequest::base_all(Featurization::RowOnly))
        .unwrap();
    assert_eq!(response.version, before.version);
    assert_eq!(response.checksum, before.checksum);
    assert!(engine.metrics_json().contains("\"swaps_rejected\":1"));

    engine.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_mapped_artifact_is_rejected() {
    let model = fit(&db(24, 1.0));
    let path = temp_path("swap_truncated");
    model.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let engine = Engine::new(fit(&db(24, 1.0)), ServeConfig::default()).unwrap();
    let err = engine.swap_from_path(&path).unwrap_err();
    assert!(matches!(err, ServeError::Artifact(_)), "{err}");
    assert!(engine
        .submit(FeaturizeRequest::base_all(Featurization::RowOnly))
        .is_ok());

    engine.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_swap_file_is_an_io_rejection() {
    let engine = Engine::new(fit(&db(24, 1.0)), ServeConfig::default()).unwrap();
    let err = engine
        .swap_from_path(std::path::Path::new("/nonexistent/leva_model.leva"))
        .unwrap_err();
    assert!(matches!(err, ServeError::Io(_)), "{err}");
    assert!(engine.metrics_json().contains("\"swaps_rejected\":1"));
    engine.shutdown();
}
