//! Feature selection for the *Full Table + Feature Engineering* baseline:
//! mutual-information ranking, plus the ARDA-style random-injection filter
//! (Chepurko et al., VLDB'20) that keeps only features whose random-forest
//! importance beats injected random probes.

use crate::forest::{ForestConfig, RandomForest};
use crate::model::Model;
use leva_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Estimates the mutual information between a (discretized) feature column
/// and the target. Both sides are quantized into up to `bins` equal-width
/// bins. Returned in nats.
pub fn mutual_information(feature: &[f64], target: &[f64], bins: usize) -> f64 {
    assert_eq!(feature.len(), target.len());
    let n = feature.len();
    if n == 0 {
        return 0.0;
    }
    let fx = discretize(feature, bins);
    let fy = discretize(target, bins);
    let kx = fx.iter().copied().max().unwrap_or(0) + 1;
    let ky = fy.iter().copied().max().unwrap_or(0) + 1;
    let mut joint = vec![0.0f64; kx * ky];
    let mut px = vec![0.0f64; kx];
    let mut py = vec![0.0f64; ky];
    let inv = 1.0 / n as f64;
    for i in 0..n {
        joint[fx[i] * ky + fy[i]] += inv;
        px[fx[i]] += inv;
        py[fy[i]] += inv;
    }
    let mut mi = 0.0;
    for a in 0..kx {
        for b in 0..ky {
            let j = joint[a * ky + b];
            if j > 1e-12 {
                mi += j * (j / (px[a] * py[b])).ln();
            }
        }
    }
    mi.max(0.0)
}

fn discretize(values: &[f64], bins: usize) -> Vec<usize> {
    let bins = bins.max(2);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max <= min {
        return vec![0; values.len()];
    }
    let width = (max - min) / bins as f64;
    values
        .iter()
        .map(|&v| (((v - min) / width) as usize).min(bins - 1))
        .collect()
}

/// Ranks features by mutual information with the target and returns the
/// indices of the top `k`.
pub fn select_k_best_mi(x: &Matrix, y: &[f64], k: usize, bins: usize) -> Vec<usize> {
    let d = x.cols();
    let mut scored: Vec<(usize, f64)> = (0..d)
        .map(|c| {
            let col: Vec<f64> = (0..x.rows()).map(|r| x[(r, c)]).collect();
            (c, mutual_information(&col, y, bins))
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite MI")
            .then(a.0.cmp(&b.0))
    });
    let mut keep: Vec<usize> = scored.into_iter().take(k.min(d)).map(|(c, _)| c).collect();
    keep.sort_unstable();
    keep
}

/// ARDA-style random-injection selection: append `n_probes` permuted copies
/// of real columns as noise probes, fit a random forest, and keep only the
/// real features whose importance exceeds the strongest probe's importance
/// scaled by `slack` (slack < 1 is more permissive).
pub fn random_injection_selection(
    x: &Matrix,
    y: &[f64],
    classification: bool,
    n_classes: usize,
    n_probes: usize,
    slack: f64,
    seed: u64,
) -> Vec<usize> {
    let n = x.rows();
    let d = x.cols();
    if d == 0 || n == 0 {
        return Vec::new();
    }
    let n_probes = n_probes.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut augmented = Matrix::zeros(n, d + n_probes);
    for r in 0..n {
        augmented.row_mut(r)[..d].copy_from_slice(x.row(r));
    }
    for p in 0..n_probes {
        // A probe is a row-permuted real column: same marginal, no signal.
        let src = p % d;
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        for r in 0..n {
            augmented[(r, d + p)] = x[(perm[r], src)];
        }
    }
    let mut forest = if classification {
        RandomForest::classifier(
            n_classes,
            ForestConfig {
                n_trees: 30,
                seed,
                ..Default::default()
            },
        )
    } else {
        RandomForest::regressor(ForestConfig {
            n_trees: 30,
            seed,
            ..Default::default()
        })
    };
    forest.fit(&augmented, y);
    let imp = forest.feature_importance();
    let probe_max = imp[d..].iter().copied().fold(0.0f64, f64::max);
    let threshold = probe_max * slack;
    let keep: Vec<usize> = (0..d).filter(|&c| imp[c] > threshold).collect();
    if keep.is_empty() {
        // Never return an empty feature set; fall back to the single best.
        let best = (0..d)
            .max_by(|&a, &b| imp[a].partial_cmp(&imp[b]).expect("finite importance"))
            .unwrap_or(0);
        vec![best]
    } else {
        keep
    }
}

/// Projects a matrix onto a subset of columns.
pub fn project_columns(x: &Matrix, columns: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), columns.len());
    for r in 0..x.rows() {
        for (o, &c) in columns.iter().enumerate() {
            out[(r, o)] = x[(r, c)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal_and_noise() -> (Matrix, Vec<f64>) {
        // col 0: strong signal; col 1: weak signal; col 2: pure structure-
        // free noise (pseudorandom but uncorrelated).
        let n = 200;
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let t = if i % 2 == 0 { 1.0 } else { 0.0 };
            let strong = t * 10.0 + (i % 3) as f64 * 0.1;
            let weak = t + (i % 7) as f64;
            let noise = ((i * 2654435761) % 97) as f64;
            rows.push(vec![strong, weak, noise]);
            y.push(t);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn mi_detects_dependence() {
        let (x, y) = signal_and_noise();
        let col = |c: usize| -> Vec<f64> { (0..x.rows()).map(|r| x[(r, c)]).collect() };
        let mi_strong = mutual_information(&col(0), &y, 10);
        let mi_noise = mutual_information(&col(2), &y, 10);
        assert!(mi_strong > mi_noise + 0.1, "{mi_strong} vs {mi_noise}");
    }

    #[test]
    fn mi_of_independent_is_near_zero() {
        let a: Vec<f64> = (0..500).map(|i| ((i * 37) % 100) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| ((i * 61 + 7) % 100) as f64).collect();
        assert!(mutual_information(&a, &b, 5) < 0.15);
    }

    #[test]
    fn k_best_keeps_signal() {
        let (x, y) = signal_and_noise();
        let keep = select_k_best_mi(&x, &y, 1, 10);
        assert_eq!(keep, vec![0]);
    }

    #[test]
    fn random_injection_drops_noise() {
        let (x, y) = signal_and_noise();
        let keep = random_injection_selection(&x, &y, true, 2, 6, 1.0, 5);
        assert!(keep.contains(&0), "strong feature kept: {keep:?}");
        assert!(!keep.contains(&2), "noise dropped: {keep:?}");
    }

    #[test]
    fn projection_shapes() {
        let (x, _) = signal_and_noise();
        let p = project_columns(&x, &[2, 0]);
        assert_eq!(p.cols(), 2);
        assert_eq!(p[(0, 0)], x[(0, 2)]);
        assert_eq!(p[(0, 1)], x[(0, 0)]);
    }

    #[test]
    fn constant_feature_mi_zero() {
        let a = vec![3.0; 100];
        let y: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        assert_eq!(mutual_information(&a, &y, 10), 0.0);
    }
}
