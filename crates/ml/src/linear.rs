//! Ordinary/ridge linear regression via the normal equations.

use crate::model::{solve_linear_system, Model};
use leva_linalg::Matrix;

/// Linear regression with an optional L2 (ridge) penalty. A small default
/// ridge keeps the normal equations well-conditioned on collinear features
/// (one-hot blocks, embeddings).
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// L2 penalty strength.
    pub l2: f64,
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Creates an unfitted model with ridge strength `l2`.
    pub fn new(l2: f64) -> Self {
        Self {
            l2,
            weights: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Fitted coefficient vector (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new(1e-6)
    }
}

impl Model for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        let d = x.cols();
        assert_eq!(n, y.len());
        assert!(n > 0, "cannot fit on empty data");
        // Center the data so the intercept separates out.
        let mut x_mean = vec![0.0; d];
        for r in 0..n {
            for (m, &v) in x_mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        // Normal equations on centered data: (XᵀX + λI) w = Xᵀ y.
        let mut xtx = Matrix::zeros(d, d);
        let mut xty = vec![0.0; d];
        let mut row = vec![0.0; d];
        for r in 0..n {
            for (c, (&v, &m)) in row.iter_mut().zip(x.row(r).iter().zip(&x_mean)) {
                *c = v - m;
            }
            let yc = y[r] - y_mean;
            for a in 0..d {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                xty[a] += ra * yc;
                let out = xtx.row_mut(a);
                for (b, &rb) in row.iter().enumerate() {
                    out[b] += ra * rb;
                }
            }
        }
        for i in 0..d {
            xtx[(i, i)] += self.l2 * n as f64 + 1e-10;
        }
        self.weights = solve_linear_system(&xtx, &xty);
        self.intercept = y_mean
            - self
                .weights
                .iter()
                .zip(&x_mean)
                .map(|(w, m)| w * m)
                .sum::<f64>();
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(
            x.cols(),
            self.weights.len(),
            "predict before fit or dim mismatch"
        );
        (0..x.rows())
            .map(|r| {
                self.intercept
                    + x.row(r)
                        .iter()
                        .zip(&self.weights)
                        .map(|(v, w)| v * w)
                        .sum::<f64>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "linear_regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn fits_exact_linear_relationship() {
        // y = 2x1 - 3x2 + 5
        let x = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
            &[3.0, -1.0],
        ]);
        let y: Vec<f64> = (0..5)
            .map(|r| 2.0 * x[(r, 0)] - 3.0 * x[(r, 1)] + 5.0)
            .collect();
        let mut m = LinearRegression::new(1e-9);
        m.fit(&x, &y);
        assert!((m.weights()[0] - 2.0).abs() < 1e-4);
        assert!((m.weights()[1] + 3.0).abs() < 1e-4);
        assert!((m.intercept() - 5.0).abs() < 1e-3);
        let pred = m.predict(&x);
        assert!(r2_score(&y, &pred) > 0.999999);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let mut plain = LinearRegression::new(1e-9);
        plain.fit(&x, &y);
        let mut heavy = LinearRegression::new(10.0);
        heavy.fit(&x, &y);
        assert!(heavy.weights()[0].abs() < plain.weights()[0].abs());
    }

    #[test]
    fn collinear_features_are_stable() {
        // Second feature duplicates the first.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = vec![2.0, 4.0, 6.0];
        let mut m = LinearRegression::default();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(r2_score(&y, &pred) > 0.999);
        assert!(m.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn constant_target() {
        let x = Matrix::from_rows(&[&[1.0], &[5.0]]);
        let mut m = LinearRegression::default();
        m.fit(&x, &[7.0, 7.0]);
        let pred = m.predict(&x);
        assert!((pred[0] - 7.0).abs() < 1e-6);
    }
}
