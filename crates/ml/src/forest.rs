//! Random forests: bagged CART trees with per-split feature subsampling.

use crate::model::Model;
use crate::tree::{DecisionTree, TreeConfig};
use leva_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters. `max_features = None` defaults to
    /// √d (classification) / d/3 (regression) at fit time.
    pub tree: TreeConfig,
    /// Bootstrap-sample the training rows per tree.
    pub bootstrap: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeConfig::default(),
            bootstrap: true,
            seed: 0xf0e,
        }
    }
}

/// A random forest for classification or regression.
#[derive(Debug, Clone)]
pub struct RandomForest {
    cfg: ForestConfig,
    classification: bool,
    n_classes: usize,
    trees: Vec<DecisionTree>,
    importance: Vec<f64>,
}

impl RandomForest {
    /// Creates an unfitted classifier forest.
    pub fn classifier(n_classes: usize, cfg: ForestConfig) -> Self {
        Self {
            cfg,
            classification: true,
            n_classes,
            trees: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Creates an unfitted regression forest.
    pub fn regressor(cfg: ForestConfig) -> Self {
        Self {
            cfg,
            classification: false,
            n_classes: 0,
            trees: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Normalized per-feature importance (sums to 1 when any split exists).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Model for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        let d = x.cols();
        assert_eq!(n, y.len());
        assert!(n > 0);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        self.trees.clear();
        self.importance = vec![0.0; d];
        let max_features = self.cfg.tree.max_features.unwrap_or_else(|| {
            if self.classification {
                (d as f64).sqrt().ceil() as usize
            } else {
                (d / 3).max(1)
            }
        });
        for t in 0..self.cfg.n_trees {
            let tree_cfg = TreeConfig {
                max_features: Some(max_features.clamp(1, d)),
                seed: self.cfg.seed.wrapping_add(1000 + t as u64),
                ..self.cfg.tree
            };
            let mut tree = if self.classification {
                DecisionTree::classifier(self.n_classes, tree_cfg)
            } else {
                DecisionTree::regressor(tree_cfg)
            };
            let indices: Vec<usize> = if self.cfg.bootstrap {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            tree.fit_indices(x, y, &indices);
            for (acc, &imp) in self.importance.iter_mut().zip(tree.feature_importance()) {
                *acc += imp;
            }
            self.trees.push(tree);
        }
        let total: f64 = self.importance.iter().sum();
        if total > 0.0 {
            for v in &mut self.importance {
                *v /= total;
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let n = x.rows();
        if self.classification {
            let mut votes = vec![vec![0usize; self.n_classes]; n];
            for tree in &self.trees {
                for (r, vote_row) in votes.iter_mut().enumerate() {
                    let c = tree.predict_row(x.row(r)) as usize;
                    vote_row[c] += 1;
                }
            }
            votes
                .into_iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                        .map(|(c, _)| c as f64)
                        .unwrap_or(0.0)
                })
                .collect()
        } else {
            let mut acc = vec![0.0; n];
            for tree in &self.trees {
                for (r, a) in acc.iter_mut().enumerate() {
                    *a += tree.predict_row(x.row(r));
                }
            }
            let k = self.trees.len() as f64;
            acc.into_iter().map(|v| v / k).collect()
        }
    }

    fn name(&self) -> &'static str {
        "random_forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2_score};

    fn xor_data() -> (Matrix, Vec<f64>) {
        // XOR-ish pattern a single linear model cannot fit.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let jitter = (i % 5) as f64 * 0.02;
            rows.push(vec![a + jitter, b - jitter]);
            ys.push(if (a as i64) ^ (b as i64) == 1 {
                1.0
            } else {
                0.0
            });
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut f = RandomForest::classifier(
            2,
            ForestConfig {
                n_trees: 20,
                ..Default::default()
            },
        );
        f.fit(&x, &y);
        assert!(accuracy(&y, &f.predict(&x)) > 0.95);
        assert_eq!(f.tree_count(), 20);
    }

    #[test]
    fn regression_smoothing() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = (0..50).map(|i| (i as f64 / 5.0).sin()).collect();
        let mut f = RandomForest::regressor(ForestConfig {
            n_trees: 30,
            ..Default::default()
        });
        f.fit(&x, &y);
        assert!(r2_score(&y, &f.predict(&x)) > 0.9);
    }

    #[test]
    fn importance_normalized_and_informative() {
        let (x, y) = xor_data();
        let mut f = RandomForest::classifier(2, ForestConfig::default());
        f.fit(&x, &y);
        let imp = f.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let (x, y) = xor_data();
        let mut a = RandomForest::classifier(2, ForestConfig::default());
        let mut b = RandomForest::classifier(2, ForestConfig::default());
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn no_bootstrap_uses_all_rows() {
        let (x, y) = xor_data();
        let mut f = RandomForest::classifier(
            2,
            ForestConfig {
                bootstrap: false,
                n_trees: 5,
                ..Default::default()
            },
        );
        f.fit(&x, &y);
        assert!(accuracy(&y, &f.predict(&x)) > 0.95);
    }
}
