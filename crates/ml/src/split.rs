//! Train/test splitting and k-fold cross-validation (seeded, deterministic).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits a dataset into (train, test) with `test_fraction` of rows in the
/// test set, after a seeded shuffle.
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0,1)"
    );
    let n = data.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = indices.split_at(n_test.min(n));
    (data.select(train_idx), data.select(test_idx))
}

/// Yields `k` (train, validation) index splits for cross-validation.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold requires k >= 2");
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let fold_size = n.div_ceil(k);
    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let lo = f * fold_size;
        let hi = ((f + 1) * fold_size).min(n);
        if lo >= hi {
            break;
        }
        let val: Vec<usize> = indices[lo..hi].to_vec();
        let train: Vec<usize> = indices[..lo]
            .iter()
            .chain(&indices[hi..])
            .copied()
            .collect();
        out.push((train, val));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Task;
    use leva_linalg::Matrix;

    fn data(n: usize) -> Dataset {
        let mut x = Matrix::zeros(n, 1);
        for i in 0..n {
            x[(i, 0)] = i as f64;
        }
        Dataset::new(x, (0..n).map(|i| i as f64).collect(), Task::Regression)
    }

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(&data(100), 0.2, 1);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
    }

    #[test]
    fn split_partitions_rows() {
        let (train, test) = train_test_split(&data(50), 0.3, 2);
        let mut all: Vec<i64> = train.y.iter().chain(&test.y).map(|&v| v as i64).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn split_deterministic() {
        let (a, _) = train_test_split(&data(30), 0.5, 7);
        let (b, _) = train_test_split(&data(30), 0.5, 7);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn kfold_covers_everything_once() {
        let folds = kfold_indices(25, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<usize>>());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 25);
            assert!(val.iter().all(|i| !train.contains(i)));
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_k1_panics() {
        kfold_indices(10, 1, 0);
    }
}
