//! # leva-ml
//!
//! A from-scratch downstream-ML substrate for the Leva reproduction: the
//! exact model families the paper evaluates — random forests, logistic
//! regression with ElasticNet regularization, ElasticNet/linear regression,
//! and 2-layer fully connected neural networks — plus metrics (accuracy,
//! MAE, R², F1), seeded train/test splitting, grid search, and the
//! feature-selection algorithms behind the *Full Table + Feature
//! Engineering* baseline (mutual information and ARDA-style random
//! injection).

#![warn(missing_docs)]
// Index loops are the clearest idiom in the numeric kernels below.
#![allow(clippy::needless_range_loop)]

mod dataset;
mod elasticnet;
mod evaluate;
mod forest;
mod gridsearch;
mod linear;
mod logistic;
mod metrics;
mod mlp;
mod model;
mod select;
mod split;
mod tree;

pub use dataset::{Dataset, Standardizer, Task};
pub use elasticnet::ElasticNet;
pub use evaluate::{binary_macro_f1, cross_validate, ConfusionMatrix, CvResult};
pub use forest::{ForestConfig, RandomForest};
pub use gridsearch::{fit_best_and_score, grid_search, GridSearchResult};
pub use linear::LinearRegression;
pub use logistic::LogisticRegression;
pub use metrics::{accuracy, f1_score, mae, mse, r2_score, F1};
pub use mlp::{Mlp, MlpConfig};
pub use model::{solve_linear_system, Model};
pub use select::{
    mutual_information, project_columns, random_injection_selection, select_k_best_mi,
};
pub use split::{kfold_indices, train_test_split};
pub use tree::{DecisionTree, TreeConfig};
