//! Higher-level evaluation utilities: confusion matrices, macro-averaged
//! F1, and k-fold cross-validation over any [`Model`] builder.

use crate::dataset::{Dataset, Task};
use crate::metrics::{accuracy, f1_score, mae};
use crate::model::Model;
use crate::split::kfold_indices;

/// A confusion matrix for `k` classes: `counts[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the matrix from true/predicted label vectors.
    pub fn from_predictions(y_true: &[f64], y_pred: &[f64], k: usize) -> ConfusionMatrix {
        assert_eq!(y_true.len(), y_pred.len());
        let mut counts = vec![0usize; k * k];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            let (t, p) = (t as usize, p as usize);
            if t < k && p < k {
                counts[t * k + p] += 1;
            }
        }
        ConfusionMatrix { k, counts }
    }

    /// Count of rows with true class `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.k + p]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.k).map(|i| self.get(i, i)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-class F1 (one-vs-rest), index = class.
    pub fn per_class_f1(&self) -> Vec<f64> {
        (0..self.k)
            .map(|c| {
                let tp = self.get(c, c);
                let fp: usize = (0..self.k)
                    .filter(|&t| t != c)
                    .map(|t| self.get(t, c))
                    .sum();
                let fn_: usize = (0..self.k)
                    .filter(|&p| p != c)
                    .map(|p| self.get(c, p))
                    .sum();
                let precision = if tp + fp == 0 {
                    0.0
                } else {
                    tp as f64 / (tp + fp) as f64
                };
                let recall = if tp + fn_ == 0 {
                    0.0
                } else {
                    tp as f64 / (tp + fn_) as f64
                };
                if precision + recall < 1e-300 {
                    0.0
                } else {
                    2.0 * precision * recall / (precision + recall)
                }
            })
            .collect()
    }

    /// Macro-averaged F1 (unweighted mean over classes).
    pub fn macro_f1(&self) -> f64 {
        let f1s = self.per_class_f1();
        f1s.iter().sum::<f64>() / f1s.len().max(1) as f64
    }
}

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Metric per fold (accuracy or negative MAE, higher is better).
    pub fold_scores: Vec<f64>,
}

impl CvResult {
    /// Mean fold score.
    pub fn mean(&self) -> f64 {
        self.fold_scores.iter().sum::<f64>() / self.fold_scores.len().max(1) as f64
    }

    /// Population standard deviation of fold scores.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        (self
            .fold_scores
            .iter()
            .map(|s| (s - m).powi(2))
            .sum::<f64>()
            / self.fold_scores.len().max(1) as f64)
            .sqrt()
    }
}

/// Runs `k`-fold cross-validation with a fresh model per fold. Scores are
/// accuracy for classification and negative MAE for regression (higher is
/// better in both cases).
pub fn cross_validate<F>(data: &Dataset, k: usize, seed: u64, mut make: F) -> CvResult
where
    F: FnMut() -> Box<dyn Model>,
{
    let folds = kfold_indices(data.len(), k, seed);
    let mut fold_scores = Vec::with_capacity(folds.len());
    for (train_idx, val_idx) in folds {
        let train = data.select(&train_idx);
        let val = data.select(&val_idx);
        let mut model = make();
        model.fit(&train.x, &train.y);
        let pred = model.predict(&val.x);
        let score = match data.task {
            Task::Classification { .. } => accuracy(&val.y, &pred),
            Task::Regression => -mae(&val.y, &pred),
        };
        fold_scores.push(score);
    }
    CvResult { fold_scores }
}

/// Binary-classification convenience: macro over the two one-vs-rest F1s
/// computed directly from label vectors.
pub fn binary_macro_f1(y_true: &[f64], y_pred: &[f64]) -> f64 {
    let pos = f1_score(y_true, y_pred, 1.0).f1;
    let neg = f1_score(y_true, y_pred, 0.0).f1;
    (pos + neg) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegression;
    use leva_linalg::Matrix;

    #[test]
    fn confusion_matrix_counts() {
        let t = [0.0, 0.0, 1.0, 1.0, 2.0];
        let p = [0.0, 1.0, 1.0, 1.0, 0.0];
        let cm = ConfusionMatrix::from_predictions(&t, &p, 3);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 2);
        assert_eq!(cm.get(2, 0), 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_matches_manual() {
        let t = [0.0, 0.0, 1.0, 1.0];
        let p = [0.0, 1.0, 1.0, 1.0];
        let cm = ConfusionMatrix::from_predictions(&t, &p, 2);
        let manual = binary_macro_f1(&t, &p);
        assert!((cm.macro_f1() - manual).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_f1_one() {
        let t = [0.0, 1.0, 2.0, 0.0];
        let cm = ConfusionMatrix::from_predictions(&t, &t, 3);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn cross_validation_on_linear_data() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = (0..60).map(|i| 3.0 * i as f64 + 1.0).collect();
        let data = Dataset::new(x, y, Task::Regression);
        let cv = cross_validate(&data, 5, 7, || Box::new(LinearRegression::new(1e-9)));
        assert_eq!(cv.fold_scores.len(), 5);
        // Negative MAE near zero for a perfectly linear relationship.
        assert!(cv.mean() > -0.1, "mean fold score {}", cv.mean());
        assert!(cv.std_dev() < 0.2);
    }

    #[test]
    fn empty_cv_result_is_safe() {
        let cv = CvResult {
            fold_scores: Vec::new(),
        };
        assert_eq!(cv.mean(), 0.0);
        assert_eq!(cv.std_dev(), 0.0);
    }
}
