//! Datasets: a feature matrix, a target vector, and the task kind.

use leva_linalg::Matrix;

/// The learning task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Classification over `n_classes` labels encoded as `0.0..n_classes`.
    Classification {
        /// Number of classes.
        n_classes: usize,
    },
    /// Real-valued regression.
    Regression,
}

/// A supervised dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, `n × d`.
    pub x: Matrix,
    /// Targets, length `n`. Class labels for classification.
    pub y: Vec<f64>,
    /// Task kind.
    pub task: Task,
}

impl Dataset {
    /// Builds a dataset, validating shapes and (for classification) labels.
    pub fn new(x: Matrix, y: Vec<f64>, task: Task) -> Dataset {
        assert_eq!(x.rows(), y.len(), "feature/target length mismatch");
        if let Task::Classification { n_classes } = task {
            for &label in &y {
                let l = label as usize;
                assert!(
                    label.fract() == 0.0 && l < n_classes,
                    "label {label} out of range for {n_classes} classes"
                );
            }
        }
        Dataset { x, y, task }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Selects the rows at `indices` into a new dataset.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut x = Matrix::zeros(indices.len(), self.x.cols());
        let mut y = Vec::with_capacity(indices.len());
        for (out_r, &r) in indices.iter().enumerate() {
            x.row_mut(out_r).copy_from_slice(self.x.row(r));
            y.push(self.y[r]);
        }
        Dataset {
            x,
            y,
            task: self.task,
        }
    }

    /// Number of classes for classification tasks (1 for regression).
    pub fn n_classes(&self) -> usize {
        match self.task {
            Task::Classification { n_classes } => n_classes,
            Task::Regression => 1,
        }
    }
}

/// Standardizes features to zero mean / unit variance, fitted on one dataset
/// and applicable to another (train → test).
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits on the rows of `x`.
    pub fn fit(x: &Matrix) -> Standardizer {
        let n = x.rows().max(1);
        let d = x.cols();
        let mut mean = vec![0.0; d];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut std = vec![0.0; d];
        for r in 0..x.rows() {
            for ((s, &v), &m) in std.iter_mut().zip(x.row(r)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant features pass through unscaled
            }
        }
        Standardizer { mean, std }
    }

    /// Applies the transformation.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len());
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, &m), &s) in out.row_mut(r).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        Dataset::new(
            x,
            vec![0.0, 1.0, 0.0],
            Task::Classification { n_classes: 2 },
        )
    }

    #[test]
    fn shapes() {
        let d = data();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn select_rows() {
        let d = data().select(&[2, 0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.x.row(0), &[5.0, 6.0]);
        assert_eq!(d.y, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_label_panics() {
        let x = Matrix::from_rows(&[&[1.0]]);
        Dataset::new(x, vec![5.0], Task::Classification { n_classes: 2 });
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        for c in 0..2 {
            let col: Vec<f64> = (0..3).map(|r| t[(r, c)]).collect();
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            let var: f64 = col.iter().map(|v| v * v).sum::<f64>() / 3.0;
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_constant_feature_safe() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0]]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        assert!(t.data().iter().all(|v| v.is_finite()));
    }
}
