//! Hyper-parameter grid search on a held-out validation split — the paper
//! reports "the best performance after configuring model hyper-parameters
//! using grid search" (§6.1).

use crate::dataset::{Dataset, Task};
use crate::metrics::{accuracy, mae};
use crate::model::Model;
use crate::split::train_test_split;

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// Index of the winning candidate.
    pub best_index: usize,
    /// Validation score of the winner (higher is better; MAE is negated).
    pub best_score: f64,
    /// Validation score per candidate.
    pub scores: Vec<f64>,
}

/// Evaluates `n_candidates` model builders on a fixed validation split and
/// returns the scores. The score is accuracy for classification and
/// negative MAE for regression, so higher is always better.
pub fn grid_search<F>(
    n_candidates: usize,
    data: &Dataset,
    val_fraction: f64,
    seed: u64,
    mut make: F,
) -> GridSearchResult
where
    F: FnMut(usize) -> Box<dyn Model>,
{
    assert!(n_candidates > 0, "need at least one candidate");
    let (train, val) = train_test_split(data, val_fraction, seed);
    let mut scores = Vec::with_capacity(n_candidates);
    for i in 0..n_candidates {
        let mut model = make(i);
        model.fit(&train.x, &train.y);
        let pred = model.predict(&val.x);
        let score = match data.task {
            Task::Classification { .. } => accuracy(&val.y, &pred),
            Task::Regression => -mae(&val.y, &pred),
        };
        scores.push(score);
    }
    let best_index = scores
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.partial_cmp(b.1)
                .expect("finite scores")
                .then(b.0.cmp(&a.0))
        })
        .map(|(i, _)| i)
        .expect("non-empty candidates");
    GridSearchResult {
        best_index,
        best_score: scores[best_index],
        scores,
    }
}

/// Fits the winning candidate on the full training data and evaluates on a
/// provided test set; returns (test metric, winning index). The metric is
/// accuracy (classification) or MAE (regression), *not* negated.
pub fn fit_best_and_score<F>(
    n_candidates: usize,
    train: &Dataset,
    test: &Dataset,
    val_fraction: f64,
    seed: u64,
    mut make: F,
) -> (f64, usize)
where
    F: FnMut(usize) -> Box<dyn Model>,
{
    let gs = grid_search(n_candidates, train, val_fraction, seed, &mut make);
    let mut model = make(gs.best_index);
    model.fit(&train.x, &train.y);
    let pred = model.predict(&test.x);
    let metric = match train.task {
        Task::Classification { .. } => accuracy(&test.y, &pred),
        Task::Regression => mae(&test.y, &pred),
    };
    (metric, gs.best_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegression;
    use leva_linalg::Matrix;

    fn linear_data() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = (0..100).map(|i| 2.0 * i as f64 + 1.0).collect();
        Dataset::new(x, y, Task::Regression)
    }

    #[test]
    fn picks_less_regularized_model_on_clean_data() {
        let data = linear_data();
        let ridges = [1e-8, 1000.0];
        let result = grid_search(2, &data, 0.25, 3, |i| {
            Box::new(LinearRegression::new(ridges[i]))
        });
        assert_eq!(result.best_index, 0);
        assert!(result.scores[0] > result.scores[1]);
    }

    #[test]
    fn fit_best_reports_test_metric() {
        let data = linear_data();
        let (train, test) = train_test_split(&data, 0.2, 1);
        let (metric, idx) = fit_best_and_score(2, &train, &test, 0.25, 3, |i| {
            Box::new(LinearRegression::new([1e-8, 1000.0][i]))
        });
        assert_eq!(idx, 0);
        assert!(metric < 0.1, "MAE should be tiny, got {metric}");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_grid_panics() {
        let data = linear_data();
        grid_search(0, &data, 0.2, 0, |_| Box::new(LinearRegression::default()));
    }
}
