//! A 2-layer fully connected neural network (the paper's "NN" model):
//! `input → hidden (ReLU, optional dropout) → output`, with a softmax
//! cross-entropy head for classification and a linear MSE head for
//! regression. Trained with mini-batch Adam.

use crate::model::Model;
use leva_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden-layer width (paper uses 64).
    pub hidden: usize,
    /// Dropout probability on the hidden layer (0 disables; the Table 6
    /// regularization ablation uses it).
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            dropout: 0.0,
            epochs: 60,
            lr: 1e-2,
            weight_decay: 1e-5,
            batch_size: 32,
            seed: 0x313,
        }
    }
}

/// A 2-layer MLP for classification or regression.
#[derive(Debug, Clone)]
pub struct Mlp {
    cfg: MlpConfig,
    classification: bool,
    n_outputs: usize,
    w1: Vec<f64>, // hidden × d
    b1: Vec<f64>,
    w2: Vec<f64>, // out × hidden
    b2: Vec<f64>,
    d: usize,
}

impl Mlp {
    /// Creates an unfitted classifier.
    pub fn classifier(n_classes: usize, cfg: MlpConfig) -> Self {
        assert!(n_classes >= 2);
        Self {
            cfg,
            classification: true,
            n_outputs: n_classes,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
            d: 0,
        }
    }

    /// Creates an unfitted regressor.
    pub fn regressor(cfg: MlpConfig) -> Self {
        Self {
            cfg,
            classification: false,
            n_outputs: 1,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
            d: 0,
        }
    }

    fn forward(&self, row: &[f64], hidden_buf: &mut [f64], out_buf: &mut [f64]) {
        let h = self.cfg.hidden;
        for j in 0..h {
            let mut acc = self.b1[j];
            let w_row = &self.w1[j * self.d..(j + 1) * self.d];
            for (wi, &xi) in w_row.iter().zip(row) {
                acc += wi * xi;
            }
            hidden_buf[j] = acc.max(0.0); // ReLU
        }
        for o in 0..self.n_outputs {
            let mut acc = self.b2[o];
            let w_row = &self.w2[o * h..(o + 1) * h];
            for (wi, &hi) in w_row.iter().zip(hidden_buf.iter()) {
                acc += wi * hi;
            }
            out_buf[o] = acc;
        }
        if self.classification {
            softmax_inplace(out_buf);
        }
    }

    /// Class probabilities (classification only).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(self.classification, "predict_proba requires a classifier");
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        let mut hid = vec![0.0; self.cfg.hidden];
        let mut o = vec![0.0; self.n_outputs];
        for r in 0..x.rows() {
            self.forward(x.row(r), &mut hid, &mut o);
            out.row_mut(r).copy_from_slice(&o);
        }
        out
    }
}

fn softmax_inplace(logits: &mut [f64]) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
        sum += *l;
    }
    for l in logits.iter_mut() {
        *l /= sum;
    }
}

/// Adam state for one parameter vector.
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
}

impl Adam {
    fn new(n: usize) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, wd: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + wd * params[i];
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            params[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

impl Model for Mlp {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        self.d = x.cols();
        assert_eq!(n, y.len());
        assert!(n > 0);
        let h = self.cfg.hidden;
        let k = self.n_outputs;
        let d = self.d;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        // He initialization for ReLU.
        let scale1 = (2.0 / d as f64).sqrt();
        let scale2 = (2.0 / h as f64).sqrt();
        self.w1 = (0..h * d)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale1)
            .collect();
        self.b1 = vec![0.0; h];
        self.w2 = (0..k * h)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale2)
            .collect();
        self.b2 = vec![0.0; k];

        let mut adam_w1 = Adam::new(h * d);
        let mut adam_b1 = Adam::new(h);
        let mut adam_w2 = Adam::new(k * h);
        let mut adam_b2 = Adam::new(k);

        let mut order: Vec<usize> = (0..n).collect();
        let mut g_w1 = vec![0.0; h * d];
        let mut g_b1 = vec![0.0; h];
        let mut g_w2 = vec![0.0; k * h];
        let mut g_b2 = vec![0.0; k];
        let mut pre_hidden = vec![0.0; h];
        let mut hidden = vec![0.0; h];
        let mut mask = vec![1.0; h];
        let mut out = vec![0.0; k];
        let mut delta_out = vec![0.0; k];
        let mut delta_hid = vec![0.0; h];

        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.cfg.batch_size.max(1)) {
                g_w1.fill(0.0);
                g_b1.fill(0.0);
                g_w2.fill(0.0);
                g_b2.fill(0.0);
                for &i in batch {
                    let row = x.row(i);
                    // Forward with dropout on the hidden activation.
                    for j in 0..h {
                        let mut acc = self.b1[j];
                        let w_row = &self.w1[j * d..(j + 1) * d];
                        for (wi, &xi) in w_row.iter().zip(row) {
                            acc += wi * xi;
                        }
                        pre_hidden[j] = acc;
                        let act = acc.max(0.0);
                        let keep = if self.cfg.dropout > 0.0 {
                            if rng.gen::<f64>() < self.cfg.dropout {
                                0.0
                            } else {
                                1.0 / (1.0 - self.cfg.dropout)
                            }
                        } else {
                            1.0
                        };
                        mask[j] = keep;
                        hidden[j] = act * keep;
                    }
                    for o in 0..k {
                        let mut acc = self.b2[o];
                        let w_row = &self.w2[o * h..(o + 1) * h];
                        for (wi, &hi) in w_row.iter().zip(hidden.iter()) {
                            acc += wi * hi;
                        }
                        out[o] = acc;
                    }
                    // Output deltas.
                    if self.classification {
                        softmax_inplace(&mut out);
                        let label = y[i] as usize;
                        for o in 0..k {
                            delta_out[o] = out[o] - if o == label { 1.0 } else { 0.0 };
                        }
                    } else {
                        delta_out[0] = out[0] - y[i];
                    }
                    // Backprop.
                    for o in 0..k {
                        g_b2[o] += delta_out[o];
                        let gw = &mut g_w2[o * h..(o + 1) * h];
                        for (g, &hi) in gw.iter_mut().zip(hidden.iter()) {
                            *g += delta_out[o] * hi;
                        }
                    }
                    for j in 0..h {
                        let mut acc = 0.0;
                        for o in 0..k {
                            acc += delta_out[o] * self.w2[o * h + j];
                        }
                        let relu_grad = if pre_hidden[j] > 0.0 { 1.0 } else { 0.0 };
                        delta_hid[j] = acc * relu_grad * mask[j];
                    }
                    for j in 0..h {
                        if delta_hid[j] == 0.0 {
                            continue;
                        }
                        g_b1[j] += delta_hid[j];
                        let gw = &mut g_w1[j * d..(j + 1) * d];
                        for (g, &xi) in gw.iter_mut().zip(row) {
                            *g += delta_hid[j] * xi;
                        }
                    }
                }
                let inv = 1.0 / batch.len() as f64;
                for g in g_w1.iter_mut() {
                    *g *= inv;
                }
                for g in g_b1.iter_mut() {
                    *g *= inv;
                }
                for g in g_w2.iter_mut() {
                    *g *= inv;
                }
                for g in g_b2.iter_mut() {
                    *g *= inv;
                }
                adam_w1.step(&mut self.w1, &g_w1, self.cfg.lr, self.cfg.weight_decay);
                adam_b1.step(&mut self.b1, &g_b1, self.cfg.lr, 0.0);
                adam_w2.step(&mut self.w2, &g_w2, self.cfg.lr, self.cfg.weight_decay);
                adam_b2.step(&mut self.b2, &g_b2, self.cfg.lr, 0.0);
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.d, "predict before fit or dim mismatch");
        let mut hid = vec![0.0; self.cfg.hidden];
        let mut out = vec![0.0; self.n_outputs];
        (0..x.rows())
            .map(|r| {
                self.forward(x.row(r), &mut hid, &mut out);
                if self.classification {
                    out.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                        .map(|(c, _)| c as f64)
                        .unwrap_or(0.0)
                } else {
                    out[0]
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "mlp_2layer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2_score};

    fn xor_data() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..80 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let jitter = (i % 7) as f64 * 0.01;
            rows.push(vec![a + jitter, b - jitter]);
            ys.push(if (a as i64) ^ (b as i64) == 1 {
                1.0
            } else {
                0.0
            });
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut m = Mlp::classifier(
            2,
            MlpConfig {
                hidden: 16,
                epochs: 120,
                ..Default::default()
            },
        );
        m.fit(&x, &y);
        assert!(accuracy(&y, &m.predict(&x)) > 0.95);
    }

    #[test]
    fn regression_fits_quadratic() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64 - 30.0) / 10.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = (0..60)
            .map(|i| ((i as f64 - 30.0) / 10.0).powi(2))
            .collect();
        let mut m = Mlp::regressor(MlpConfig {
            hidden: 32,
            epochs: 300,
            lr: 5e-3,
            ..Default::default()
        });
        m.fit(&x, &y);
        assert!(r2_score(&y, &m.predict(&x)) > 0.9);
    }

    #[test]
    fn probabilities_normalized() {
        let (x, y) = xor_data();
        let mut m = Mlp::classifier(
            2,
            MlpConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        m.fit(&x, &y);
        let p = m.predict_proba(&x);
        for r in 0..x.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dropout_training_is_stable() {
        let (x, y) = xor_data();
        let mut m = Mlp::classifier(
            2,
            MlpConfig {
                hidden: 24,
                epochs: 150,
                dropout: 0.2,
                ..Default::default()
            },
        );
        m.fit(&x, &y);
        // Dropout nets still learn XOR reasonably.
        assert!(accuracy(&y, &m.predict(&x)) > 0.85);
    }

    #[test]
    fn deterministic() {
        let (x, y) = xor_data();
        let cfg = MlpConfig {
            epochs: 10,
            ..Default::default()
        };
        let mut a = Mlp::classifier(2, cfg);
        let mut b = Mlp::classifier(2, cfg);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
