//! CART decision trees (classification via Gini, regression via variance),
//! the building block of the random forest.

use leva_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree growth parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples a leaf may hold — the "minimum number of nodes per
    /// leaf node" regularizer the paper applies to forests (Table 6).
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per split (None = all; forests use sqrt(d)).
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
            seed: 0x7ee,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    cfg: TreeConfig,
    classification: bool,
    n_classes: usize,
    nodes: Vec<Node>,
    importance: Vec<f64>,
}

impl DecisionTree {
    /// Creates an unfitted classifier tree.
    pub fn classifier(n_classes: usize, cfg: TreeConfig) -> Self {
        Self {
            cfg,
            classification: true,
            n_classes,
            nodes: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Creates an unfitted regression tree.
    pub fn regressor(cfg: TreeConfig) -> Self {
        Self {
            cfg,
            classification: false,
            n_classes: 0,
            nodes: Vec::new(),
            importance: Vec::new(),
        }
    }

    /// Fits on the rows of `x` restricted to `indices` (bootstrap support).
    pub fn fit_indices(&mut self, x: &Matrix, y: &[f64], indices: &[usize]) {
        assert_eq!(x.rows(), y.len());
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        self.nodes.clear();
        self.importance = vec![0.0; x.cols()];
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut idx = indices.to_vec();
        self.build(x, y, &mut idx, 0, &mut rng);
    }

    /// Fits on all rows.
    pub fn fit_all(&mut self, x: &Matrix, y: &[f64]) {
        let idx: Vec<usize> = (0..x.rows()).collect();
        self.fit_indices(x, y, &idx);
    }

    /// Per-feature total impurity decrease accumulated by this tree's splits.
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Predicts a single row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        indices: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let impurity = self.impurity(y, indices);
        let stop = depth >= self.cfg.max_depth
            || indices.len() < self.cfg.min_samples_split
            || impurity < 1e-12;
        if stop {
            return self.push_leaf(y, indices);
        }
        let Some((feature, threshold, gain)) = self.best_split(x, y, indices, impurity, rng) else {
            return self.push_leaf(y, indices);
        };
        // Partition in place.
        let mid = partition(indices, |&i| x[(i, feature)] <= threshold);
        if mid == 0 || mid == indices.len() {
            return self.push_leaf(y, indices);
        }
        self.importance[feature] += gain * indices.len() as f64;
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let left = self.build(x, y, left_idx, depth + 1, rng);
        let right = self.build(x, y, right_idx, depth + 1, rng);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    fn push_leaf(&mut self, y: &[f64], indices: &[usize]) -> usize {
        let value = if self.classification {
            // Majority class, ties to the smaller label for determinism.
            let mut counts = vec![0usize; self.n_classes];
            for &i in indices {
                counts[y[i] as usize] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c as f64)
                .unwrap_or(0.0)
        } else {
            indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64
        };
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    fn impurity(&self, y: &[f64], indices: &[usize]) -> f64 {
        if self.classification {
            let mut counts = vec![0usize; self.n_classes];
            for &i in indices {
                counts[y[i] as usize] += 1;
            }
            let n = indices.len() as f64;
            1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
        } else {
            let n = indices.len() as f64;
            let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n;
            indices.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>() / n
        }
    }

    /// Finds the best (feature, threshold) pair by exhaustive scan over the
    /// sorted values of a sampled feature subset.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        parent_impurity: f64,
        rng: &mut StdRng,
    ) -> Option<(usize, f64, f64)> {
        let d = x.cols();
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(mf) = self.cfg.max_features {
            features.shuffle(rng);
            features.truncate(mf.clamp(1, d));
        }
        let mut best: Option<(usize, f64, f64)> = None;
        let n = indices.len() as f64;
        let mut sorted: Vec<usize> = Vec::with_capacity(indices.len());
        for &f in &features {
            sorted.clear();
            sorted.extend_from_slice(indices);
            sorted.sort_by(|&a, &b| x[(a, f)].partial_cmp(&x[(b, f)]).expect("finite features"));
            // Sweep split positions maintaining left/right statistics.
            if self.classification {
                let mut left_counts = vec![0usize; self.n_classes];
                let mut right_counts = vec![0usize; self.n_classes];
                for &i in &sorted {
                    right_counts[y[i] as usize] += 1;
                }
                for pos in 0..sorted.len() - 1 {
                    let i = sorted[pos];
                    left_counts[y[i] as usize] += 1;
                    right_counts[y[i] as usize] -= 1;
                    let nl = pos + 1;
                    let nr = sorted.len() - nl;
                    if nl < self.cfg.min_samples_leaf || nr < self.cfg.min_samples_leaf {
                        continue;
                    }
                    let v_here = x[(i, f)];
                    let v_next = x[(sorted[pos + 1], f)];
                    if v_next <= v_here {
                        continue; // identical values cannot separate
                    }
                    let gini = |counts: &[usize], n: usize| {
                        1.0 - counts
                            .iter()
                            .map(|&c| (c as f64 / n as f64).powi(2))
                            .sum::<f64>()
                    };
                    let child = (nl as f64 / n) * gini(&left_counts, nl)
                        + (nr as f64 / n) * gini(&right_counts, nr);
                    let gain = parent_impurity - child;
                    // Zero-gain splits are allowed (sklearn semantics): XOR-
                    // style symmetric targets need them to make progress.
                    if best.is_none_or(|(_, _, g)| gain > g) && gain >= 0.0 {
                        best = Some((f, (v_here + v_next) / 2.0, gain));
                    }
                }
            } else {
                let mut left_sum = 0.0;
                let mut left_sq = 0.0;
                let mut right_sum: f64 = sorted.iter().map(|&i| y[i]).sum();
                let mut right_sq: f64 = sorted.iter().map(|&i| y[i] * y[i]).sum();
                for pos in 0..sorted.len() - 1 {
                    let i = sorted[pos];
                    left_sum += y[i];
                    left_sq += y[i] * y[i];
                    right_sum -= y[i];
                    right_sq -= y[i] * y[i];
                    let nl = (pos + 1) as f64;
                    let nr = n - nl;
                    if ((pos + 1) < self.cfg.min_samples_leaf)
                        || ((sorted.len() - pos - 1) < self.cfg.min_samples_leaf)
                    {
                        continue;
                    }
                    let v_here = x[(i, f)];
                    let v_next = x[(sorted[pos + 1], f)];
                    if v_next <= v_here {
                        continue;
                    }
                    let var_l = (left_sq - left_sum * left_sum / nl).max(0.0) / nl;
                    let var_r = (right_sq - right_sum * right_sum / nr).max(0.0) / nr;
                    let child = (nl / n) * var_l + (nr / n) * var_r;
                    let gain = parent_impurity - child;
                    if best.is_none_or(|(_, _, g)| gain > g) && gain >= 0.0 {
                        best = Some((f, (v_here + v_next) / 2.0, gain));
                    }
                }
            }
        }
        best
    }
}

/// Stable-ish partition: moves elements satisfying `pred` to the front,
/// returning the boundary index.
fn partition<T, F: Fn(&T) -> bool>(items: &mut [T], pred: F) -> usize {
    let mut mid = 0;
    for i in 0..items.len() {
        if pred(&items[i]) {
            items.swap(i, mid);
            mid += 1;
        }
    }
    mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2_score};

    #[test]
    fn classifies_axis_aligned_split() {
        let x = Matrix::from_rows(&[
            &[0.0],
            &[1.0],
            &[2.0],
            &[3.0],
            &[10.0],
            &[11.0],
            &[12.0],
            &[13.0],
        ]);
        let y = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let mut t = DecisionTree::classifier(2, TreeConfig::default());
        t.fit_all(&x, &y);
        assert_eq!(t.predict(&x), y);
        assert_eq!(t.predict_row(&[5.0]), 0.0);
        assert_eq!(t.predict_row(&[9.0]), 1.0);
    }

    #[test]
    fn regression_fits_step_function() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[12.0]]);
        let y = vec![5.0, 5.0, 5.0, 20.0, 20.0, 20.0];
        let mut t = DecisionTree::regressor(TreeConfig::default());
        t.fit_all(&x, &y);
        assert!(r2_score(&y, &t.predict(&x)) > 0.999);
    }

    #[test]
    fn min_samples_leaf_limits_granularity() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let mut coarse = DecisionTree::classifier(
            2,
            TreeConfig {
                min_samples_leaf: 2,
                ..Default::default()
            },
        );
        coarse.fit_all(&x, &y);
        let mut fine = DecisionTree::classifier(2, TreeConfig::default());
        fine.fit_all(&x, &y);
        assert!(coarse.node_count() <= fine.node_count());
        // The fully grown tree memorizes the data.
        assert_eq!(accuracy(&y, &fine.predict(&x)), 1.0);
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let x = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let y = vec![0.0, 1.0];
        let mut t = DecisionTree::classifier(
            2,
            TreeConfig {
                max_depth: 0,
                ..Default::default()
            },
        );
        t.fit_all(&x, &y);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn importance_identifies_informative_feature() {
        // Feature 1 is informative; feature 0 is constant-ish noise.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 3) as f64, if i < 20 { 0.0 } else { 10.0 }])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let mut t = DecisionTree::classifier(2, TreeConfig::default());
        t.fit_all(&x, &y);
        let imp = t.feature_importance();
        assert!(imp[1] > imp[0]);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let y = vec![1.0, 1.0, 1.0];
        let mut t = DecisionTree::classifier(2, TreeConfig::default());
        t.fit_all(&x, &y);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn partition_helper() {
        let mut v = vec![3, 1, 4, 1, 5];
        let mid = partition(&mut v, |&x| x < 3);
        assert_eq!(mid, 2);
        assert!(v[..2].iter().all(|&x| x < 3));
        assert!(v[2..].iter().all(|&x| x >= 3));
    }
}
