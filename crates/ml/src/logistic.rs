//! Multinomial logistic regression with an elastic-net penalty, trained by
//! mini-batch gradient descent with a proximal L1 step. This is the paper's
//! "logistic regression with ElasticNet regularization" classifier.

use crate::model::Model;
use leva_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Softmax-regression classifier with elastic-net regularization.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Number of classes.
    pub n_classes: usize,
    /// Regularization strength α.
    pub alpha: f64,
    /// L1 mixing ratio ρ ∈ [0,1].
    pub l1_ratio: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for shuffling.
    pub seed: u64,
    weights: Matrix, // k × d
    bias: Vec<f64>,  // k
}

impl LogisticRegression {
    /// Creates an unfitted classifier.
    pub fn new(n_classes: usize, alpha: f64, l1_ratio: f64) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        assert!((0.0..=1.0).contains(&l1_ratio));
        Self {
            n_classes,
            alpha,
            l1_ratio,
            epochs: 100,
            lr: 0.1,
            batch_size: 64,
            seed: 0x106,
            weights: Matrix::zeros(0, 0),
            bias: Vec::new(),
        }
    }

    /// Class-probability rows (n × k) for the given features.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let k = self.n_classes;
        let mut out = Matrix::zeros(n, k);
        for r in 0..n {
            let logits: Vec<f64> = (0..k)
                .map(|c| {
                    self.bias[c]
                        + x.row(r)
                            .iter()
                            .zip(self.weights.row(c))
                            .map(|(a, b)| a * b)
                            .sum::<f64>()
                })
                .collect();
            let probs = softmax(&logits);
            out.row_mut(r).copy_from_slice(&probs);
        }
        out
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

impl Model for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        let d = x.cols();
        assert_eq!(n, y.len());
        assert!(n > 0);
        let k = self.n_classes;
        self.weights = Matrix::zeros(k, d);
        self.bias = vec![0.0; k];
        let labels: Vec<usize> = y.iter().map(|&v| v as usize).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);
        let mut grad_w = Matrix::zeros(k, d);
        let mut grad_b = vec![0.0; k];
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.batch_size.max(1)) {
                grad_w.data_mut().fill(0.0);
                grad_b.fill(0.0);
                for &i in batch {
                    let logits: Vec<f64> = (0..k)
                        .map(|c| {
                            self.bias[c]
                                + x.row(i)
                                    .iter()
                                    .zip(self.weights.row(c))
                                    .map(|(a, b)| a * b)
                                    .sum::<f64>()
                        })
                        .collect();
                    let probs = softmax(&logits);
                    for c in 0..k {
                        let err = probs[c] - if labels[i] == c { 1.0 } else { 0.0 };
                        grad_b[c] += err;
                        let gr = grad_w.row_mut(c);
                        for (g, &v) in gr.iter_mut().zip(x.row(i)) {
                            *g += err * v;
                        }
                    }
                }
                let scale = self.lr / batch.len() as f64;
                for c in 0..k {
                    self.bias[c] -= scale * grad_b[c];
                    let wr = self.weights.row_mut(c);
                    let gr = grad_w.row(c);
                    for (w, &g) in wr.iter_mut().zip(gr) {
                        // Gradient + ridge step, then proximal L1 shrinkage.
                        let mut nw = *w - scale * (g + l2 * *w);
                        let shrink = scale * l1;
                        nw = if nw > shrink {
                            nw - shrink
                        } else if nw < -shrink {
                            nw + shrink
                        } else {
                            0.0
                        };
                        *w = nw;
                    }
                }
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let probs = self.predict_proba(x);
        (0..x.rows())
            .map(|r| {
                let row = probs.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                    .map(|(c, _)| c as f64)
                    .unwrap_or(0.0)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "logistic_elasticnet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn separable_binary() -> (Matrix, Vec<f64>) {
        // Class 0 around (-2,-2), class 1 around (2,2), deterministic grid.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let dx = (i % 5) as f64 * 0.1;
            let dy = (i % 7) as f64 * 0.1;
            rows.push(vec![-2.0 + dx, -2.0 + dy]);
            ys.push(0.0);
            rows.push(vec![2.0 - dx, 2.0 - dy]);
            ys.push(1.0);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (Matrix::from_rows(&refs), ys)
    }

    #[test]
    fn separates_linear_classes() {
        let (x, y) = separable_binary();
        let mut m = LogisticRegression::new(2, 1e-4, 0.5);
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(accuracy(&y, &pred) > 0.95);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = separable_binary();
        let mut m = LogisticRegression::new(2, 1e-3, 0.5);
        m.fit(&x, &y);
        let p = m.predict_proba(&x);
        for r in 0..x.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn multiclass_three_blobs() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 4.0)];
        for i in 0..60 {
            let c = i % 3;
            let (cx, cy) = centers[c];
            rows.push(vec![cx + (i % 5) as f64 * 0.1, cy + (i % 4) as f64 * 0.1]);
            ys.push(c as f64);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let mut m = LogisticRegression::new(3, 1e-4, 0.2);
        m.fit(&x, &ys);
        assert!(accuracy(&ys, &m.predict(&x)) > 0.95);
    }

    #[test]
    fn strong_l1_zeroes_uninformative_weights() {
        // Feature 2 carries no label signal; with a strong L1 penalty its
        // weights must end at exactly zero while the informative features
        // keep the classes separated.
        let (x2, y) = separable_binary();
        let n = x2.rows();
        let mut rows = Vec::with_capacity(n);
        for r in 0..n {
            let mut row = x2.row(r).to_vec();
            row.push(((r * 2654435761) % 17) as f64 / 17.0); // uncorrelated
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let mut m = LogisticRegression::new(2, 0.5, 1.0);
        m.fit(&x, &y);
        for c in 0..2 {
            assert_eq!(m.weights[(c, 2)], 0.0, "noise weight zeroed");
        }
        assert!(accuracy(&y, &m.predict(&x)) > 0.9);
    }

    #[test]
    fn deterministic() {
        let (x, y) = separable_binary();
        let mut a = LogisticRegression::new(2, 1e-3, 0.5);
        let mut b = LogisticRegression::new(2, 1e-3, 0.5);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
