//! The common model interface used by baselines and experiments.

use leva_linalg::Matrix;

/// A supervised model: fit on features/targets, predict targets.
///
/// Classification models take labels as `0.0..n_classes` floats and return
/// predicted labels from `predict`; regression models return real values.
pub trait Model {
    /// Fits the model. May be called once per instance.
    fn fit(&mut self, x: &Matrix, y: &[f64]);
    /// Predicts targets for the given rows.
    fn predict(&self, x: &Matrix) -> Vec<f64>;
    /// A short human-readable name for experiment reports.
    fn name(&self) -> &'static str;
}

/// Solves the square linear system `A z = b` by Gaussian elimination with
/// partial pivoting. Panics on dimension mismatch; near-singular systems are
/// stabilized by the callers (ridge terms).
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "solve requires a square matrix");
    assert_eq!(n, b.len(), "rhs length mismatch");
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[(r, col)].abs() > m[(pivot, col)].abs() {
                pivot = r;
            }
        }
        if pivot != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot, c)];
                m[(pivot, c)] = tmp;
            }
            rhs.swap(col, pivot);
        }
        let diag = m[(col, col)];
        if diag.abs() < 1e-12 {
            continue; // singular direction; leave as zero contribution
        }
        for r in (col + 1)..n {
            let factor = m[(r, col)] / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                m[(r, c)] -= factor * m[(col, c)];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut z = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = rhs[col];
        for c in (col + 1)..n {
            acc -= m[(col, c)] * z[c];
        }
        let diag = m[(col, col)];
        z[col] = if diag.abs() < 1e-12 { 0.0 } else { acc / diag };
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        // 2x + y = 5 ; x + 3y = 10 => x = 1, y = 3
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let z = solve_linear_system(&a, &[5.0, 10.0]);
        assert!((z[0] - 1.0).abs() < 1e-10);
        assert!((z[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let z = solve_linear_system(&a, &[2.0, 3.0]);
        assert!((z[0] - 3.0).abs() < 1e-12);
        assert!((z[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_finite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let z = solve_linear_system(&a, &[2.0, 2.0]);
        assert!(z.iter().all(|v| v.is_finite()));
    }
}
