//! Evaluation metrics: accuracy for classification, MAE for regression (the
//! paper's headline metrics, §6.1), plus the usual companions.

/// Classification accuracy in `[0, 1]`.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true
        .iter()
        .zip(y_pred)
        .filter(|(a, b)| (**a - **b).abs() < 0.5)
        .count();
    hits as f64 / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Coefficient of determination R². 1.0 = perfect, 0.0 = mean predictor,
/// negative = worse than the mean predictor.
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|v| (v - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(a, b)| (a - b).powi(2))
        .sum();
    if ss_tot < 1e-300 {
        return if ss_res < 1e-300 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Binary precision/recall/F1 for label `positive`.
pub fn f1_score(y_true: &[f64], y_pred: &[f64], positive: f64) -> F1 {
    assert_eq!(y_true.len(), y_pred.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&t, &p) in y_true.iter().zip(y_pred) {
        let t_pos = (t - positive).abs() < 0.5;
        let p_pos = (p - positive).abs() < 0.5;
        match (t_pos, p_pos) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall < 1e-300 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    F1 {
        precision,
        recall,
        f1,
    }
}

/// Precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1 {
    /// tp / (tp + fp)
    pub precision: f64,
    /// tp / (tp + fn)
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0.0, 1.0, 1.0], &[0.0, 1.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn mae_mse() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
        assert_eq!(mse(&[1.0, 2.0], &[2.0, 0.0]), 2.5);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((r2_score(&y, &y) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2_score(&y, &mean_pred).abs() < 1e-12);
        let bad = [10.0; 4];
        assert!(r2_score(&y, &bad) < 0.0);
    }

    #[test]
    fn r2_constant_target() {
        assert_eq!(r2_score(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
        assert_eq!(r2_score(&[2.0, 2.0], &[3.0, 3.0]), 0.0);
    }

    #[test]
    fn f1_basic() {
        // truth:  1 1 0 0 ; pred: 1 0 1 0 => tp=1 fp=1 fn=1
        let f = f1_score(&[1.0, 1.0, 0.0, 0.0], &[1.0, 0.0, 1.0, 0.0], 1.0);
        assert_eq!(f.precision, 0.5);
        assert_eq!(f.recall, 0.5);
        assert_eq!(f.f1, 0.5);
    }

    #[test]
    fn f1_degenerate() {
        let f = f1_score(&[0.0, 0.0], &[0.0, 0.0], 1.0);
        assert_eq!(f.f1, 0.0);
    }
}
