//! ElasticNet regression via cyclic coordinate descent.
//!
//! Objective: `1/(2n) ‖y − Xw − b‖² + α (ρ ‖w‖₁ + (1−ρ)/2 ‖w‖²)`.
//! This is the regularized linear model the paper uses for regression tasks
//! and (through its logistic sibling) classification.

use crate::model::Model;
use leva_linalg::Matrix;

/// ElasticNet linear regression.
#[derive(Debug, Clone)]
pub struct ElasticNet {
    /// Overall regularization strength α.
    pub alpha: f64,
    /// L1 mixing ratio ρ ∈ [0,1] (1 = lasso, 0 = ridge).
    pub l1_ratio: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the max coefficient update.
    pub tol: f64,
    weights: Vec<f64>,
    intercept: f64,
}

impl ElasticNet {
    /// Creates an unfitted ElasticNet.
    pub fn new(alpha: f64, l1_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&l1_ratio), "l1_ratio must be in [0,1]");
        Self {
            alpha,
            l1_ratio,
            max_iter: 500,
            tol: 1e-6,
            weights: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Fitted coefficients.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Number of exactly-zero coefficients (sparsity induced by L1).
    pub fn zero_count(&self) -> usize {
        self.weights.iter().filter(|w| **w == 0.0).count()
    }
}

fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

impl Model for ElasticNet {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let n = x.rows();
        let d = x.cols();
        assert_eq!(n, y.len());
        assert!(n > 0);
        let nf = n as f64;
        // Center y; keep X as-is but track column means for the intercept.
        let mut x_mean = vec![0.0; d];
        for r in 0..n {
            for (m, &v) in x_mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= nf;
        }
        let y_mean = y.iter().sum::<f64>() / nf;

        // Precompute per-column squared norms of centered columns.
        let mut col_sq = vec![0.0; d];
        for r in 0..n {
            for (cs, (&v, &m)) in col_sq.iter_mut().zip(x.row(r).iter().zip(&x_mean)) {
                *cs += (v - m) * (v - m);
            }
        }

        let mut w = vec![0.0; d];
        // residual r = y_centered - Xc w (starts at y_centered since w = 0).
        let mut resid: Vec<f64> = y.iter().map(|&v| v - y_mean).collect();
        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);

        for _ in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..d {
                if col_sq[j] < 1e-12 {
                    continue; // constant column carries no signal
                }
                // rho_j = (1/n) Σ_i xc_ij (resid_i + xc_ij w_j)
                let mut rho = 0.0;
                for i in 0..n {
                    let xij = x[(i, j)] - x_mean[j];
                    rho += xij * resid[i];
                }
                rho = rho / nf + col_sq[j] / nf * w[j];
                let new_w = soft_threshold(rho, l1) / (col_sq[j] / nf + l2);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for i in 0..n {
                        resid[i] -= delta * (x[(i, j)] - x_mean[j]);
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.intercept = y_mean - w.iter().zip(&x_mean).map(|(wj, m)| wj * m).sum::<f64>();
        self.weights = w;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(
            x.cols(),
            self.weights.len(),
            "predict before fit or dim mismatch"
        );
        (0..x.rows())
            .map(|r| {
                self.intercept
                    + x.row(r)
                        .iter()
                        .zip(&self.weights)
                        .map(|(v, w)| v * w)
                        .sum::<f64>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "elastic_net"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn near_zero_penalty_recovers_ols() {
        let x = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, -1.0],
            &[0.5, 2.0],
        ]);
        let y: Vec<f64> = (0..5)
            .map(|r| 3.0 * x[(r, 0)] - 1.0 * x[(r, 1)] + 2.0)
            .collect();
        let mut m = ElasticNet::new(1e-8, 0.5);
        m.fit(&x, &y);
        assert!((m.weights()[0] - 3.0).abs() < 1e-2);
        assert!((m.weights()[1] + 1.0).abs() < 1e-2);
        assert!(r2_score(&y, &m.predict(&x)) > 0.9999);
    }

    #[test]
    fn l1_induces_sparsity_on_irrelevant_features() {
        // y depends only on feature 0; features 1-3 are noise-free zeros of
        // signal but vary, so lasso should zero them out.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let f = i as f64;
                vec![f, (f * 7.0) % 5.0, (f * 3.0) % 11.0, (f * 13.0) % 7.0]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let y: Vec<f64> = (0..40).map(|i| 2.0 * i as f64).collect();
        let mut m = ElasticNet::new(0.5, 1.0);
        m.fit(&x, &y);
        assert!(m.weights()[0] > 1.0, "true feature kept: {:?}", m.weights());
        assert!(m.zero_count() >= 2, "noise zeroed: {:?}", m.weights());
    }

    #[test]
    fn heavy_ridge_shrinks_without_zeroing() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let mut m = ElasticNet::new(5.0, 0.0);
        m.fit(&x, &y);
        assert!(m.weights()[0] > 0.0);
        assert!(m.weights()[0] < 2.0);
    }

    #[test]
    fn constant_feature_is_ignored() {
        let x = Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 9.0], &[3.0, 9.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let mut m = ElasticNet::new(1e-6, 0.5);
        m.fit(&x, &y);
        assert_eq!(m.weights()[1], 0.0);
        assert!(r2_score(&y, &m.predict(&x)) > 0.999);
    }

    #[test]
    fn soft_threshold_properties() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }
}
