//! Tables: named collections of equal-length columns.

use crate::column::{Column, DataType};
use crate::error::{RelationalError, Result};
use crate::value::Value;

/// An in-memory columnar table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table with the given column names.
    pub fn new<S: Into<String>>(name: impl Into<String>, column_names: Vec<S>) -> Self {
        Self {
            name: name.into(),
            columns: column_names
                .into_iter()
                .map(|n| Column::new(n.into()))
                .collect(),
        }
    }

    /// Builds a table directly from columns. All columns must share a length.
    pub fn from_columns(name: impl Into<String>, columns: Vec<Column>) -> Result<Self> {
        let name = name.into();
        if let Some(first) = columns.first() {
            let len = first.len();
            for c in &columns {
                if c.len() != len {
                    return Err(RelationalError::ArityMismatch {
                        table: name,
                        expected: len,
                        actual: c.len(),
                    });
                }
            }
        }
        Ok(Self { name, columns })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutable column access (for dataset generators and noise injection).
    pub fn columns_mut(&mut self) -> &mut Vec<Column> {
        &mut self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| RelationalError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name() == name)
            .ok_or_else(|| RelationalError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    /// Appends a row. The row arity must match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(RelationalError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    /// Value at `(row, col_idx)`.
    pub fn value(&self, row: usize, col_idx: usize) -> Result<&Value> {
        let col = self
            .columns
            .get(col_idx)
            .ok_or(RelationalError::OutOfBounds {
                context: format!("column of table '{}'", self.name),
                index: col_idx,
                len: self.columns.len(),
            })?;
        col.get(row).ok_or(RelationalError::OutOfBounds {
            context: format!("row of table '{}'", self.name),
            index: row,
            len: col.len(),
        })
    }

    /// Materializes row `row` as a vector of cloned values.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.row_count() {
            return Err(RelationalError::OutOfBounds {
                context: format!("row of table '{}'", self.name),
                index: row,
                len: self.row_count(),
            });
        }
        Ok(self
            .columns
            .iter()
            .map(|c| c.get(row).cloned().unwrap_or(Value::Null))
            .collect())
    }

    /// Iterator over row indices paired with per-column value references.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, Vec<&Value>)> + '_ {
        // Columns always share the table's row count; if one were ever
        // shorter, degrade the cell to null rather than panicking mid-scan.
        static NULL_VALUE: Value = Value::Null;
        (0..self.row_count()).map(move |r| {
            let vals = self
                .columns
                .iter()
                .map(|c| c.get(r).unwrap_or(&NULL_VALUE))
                .collect();
            (r, vals)
        })
    }

    /// Adds a column of values. The column must match the current row count
    /// (or the table must be empty of columns).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if !self.columns.is_empty() && column.len() != self.row_count() {
            return Err(RelationalError::ArityMismatch {
                table: self.name.clone(),
                expected: self.row_count(),
                actual: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Removes a column by name and returns it.
    pub fn remove_column(&mut self, name: &str) -> Result<Column> {
        let idx = self.column_index(name)?;
        Ok(self.columns.remove(idx))
    }

    /// Returns a copy of the table without the named columns.
    pub fn drop_columns(&self, names: &[&str]) -> Result<Table> {
        for n in names {
            // Validate up-front so errors mention the offending column.
            self.column_index(n)?;
        }
        let cols = self
            .columns
            .iter()
            .filter(|c| !names.contains(&c.name()))
            .cloned()
            .collect();
        Table::from_columns(self.name.clone(), cols)
    }

    /// Returns a copy keeping only the first `n` rows (used to scale
    /// experiments down).
    pub fn head(&self, n: usize) -> Table {
        let cols = self
            .columns
            .iter()
            .map(|c| {
                Column::from_values(c.name().to_owned(), c.values()[..n.min(c.len())].to_vec())
            })
            .collect();
        Table {
            name: self.name.clone(),
            columns: cols,
        }
    }

    /// Inferred data type per column, in schema order.
    pub fn column_types(&self) -> Vec<DataType> {
        self.columns.iter().map(Column::infer_type).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("expenses", vec!["name", "gender", "total"]);
        t.push_row(vec!["alice".into(), "F".into(), Value::Float(10.0)])
            .unwrap();
        t.push_row(vec!["bob".into(), "M".into(), Value::Float(20.0)])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read_rows() {
        let t = sample();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 3);
        assert_eq!(t.value(1, 0).unwrap(), &Value::Text("bob".into()));
        assert_eq!(t.row(0).unwrap()[2], Value::Float(10.0));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        let err = t.push_row(vec!["x".into()]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::ArityMismatch {
                expected: 3,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn unknown_column_rejected() {
        let t = sample();
        assert!(t.column("missing").is_err());
        assert!(t.column("gender").is_ok());
    }

    #[test]
    fn out_of_bounds_row() {
        let t = sample();
        assert!(t.row(5).is_err());
        assert!(t.value(0, 9).is_err());
    }

    #[test]
    fn drop_columns_keeps_order() {
        let t = sample().drop_columns(&["gender"]).unwrap();
        assert_eq!(t.column_names(), vec!["name", "total"]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn drop_unknown_column_errors() {
        assert!(sample().drop_columns(&["nope"]).is_err());
    }

    #[test]
    fn add_column_validates_length() {
        let mut t = sample();
        let bad = Column::from_values("extra", vec![Value::Int(1)]);
        assert!(t.add_column(bad).is_err());
        let good = Column::from_values("extra", vec![Value::Int(1), Value::Int(2)]);
        assert!(t.add_column(good).is_ok());
        assert_eq!(t.column_count(), 4);
    }

    #[test]
    fn head_truncates() {
        let t = sample().head(1);
        assert_eq!(t.row_count(), 1);
        let t2 = sample().head(100);
        assert_eq!(t2.row_count(), 2);
    }

    #[test]
    fn from_columns_checks_lengths() {
        let a = Column::from_values("a", vec![Value::Int(1)]);
        let b = Column::from_values("b", vec![Value::Int(1), Value::Int(2)]);
        assert!(Table::from_columns("t", vec![a, b]).is_err());
    }

    #[test]
    fn iter_rows_visits_all() {
        let t = sample();
        let rows: Vec<_> = t.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.len(), 3);
    }
}
