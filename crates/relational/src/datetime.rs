//! Minimal datetime parsing: ISO-8601 dates and date-times to Unix epoch
//! seconds, from scratch (no chrono). The textifier treats timestamps as
//! binnable numerics, so epoch seconds are all the structure we need.

/// Parses `YYYY-MM-DD`, `YYYY-MM-DDTHH:MM:SS`, or `YYYY-MM-DD HH:MM:SS`
/// into Unix epoch seconds (UTC). Returns `None` for anything else.
pub fn parse_datetime(s: &str) -> Option<i64> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once(['T', ' ']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut it = date_part.split('-');
    let year_str = it.next()?;
    // Require exactly four digits: "1-2-3" is a serial code or version
    // string, not a date, and must stay textual.
    if year_str.len() != 4 || !year_str.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let year: i64 = year_str.parse().ok()?;
    let month: u32 = it.next()?.parse().ok()?;
    let day: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&month) {
        return None;
    }
    if day < 1 || day > days_in_month(year, month) {
        return None;
    }
    let mut secs = days_from_civil(year, month, day) * 86_400;
    if let Some(t) = time_part {
        let t = t.trim_end_matches('Z');
        let mut it = t.split(':');
        let h: i64 = it.next()?.parse().ok()?;
        let m: i64 = it.next()?.parse().ok()?;
        let sec: i64 = match it.next() {
            Some(v) => v.parse().ok()?,
            None => 0,
        };
        if it.next().is_some()
            || !(0..24).contains(&h)
            || !(0..60).contains(&m)
            || !(0..60).contains(&sec)
        {
            return None;
        }
        secs += h * 3600 + m * 60 + sec;
    }
    Some(secs)
}

/// Days from the Unix epoch to the given civil date (Howard Hinnant's
/// `days_from_civil` algorithm; exact for the proleptic Gregorian calendar).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// True when the string looks like (and parses as) a supported datetime.
pub fn looks_like_datetime(s: &str) -> bool {
    parse_datetime(s).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_zero() {
        assert_eq!(parse_datetime("1970-01-01"), Some(0));
        assert_eq!(parse_datetime("1970-01-01T00:00:00"), Some(0));
    }

    #[test]
    fn known_timestamps() {
        // 2000-01-01 = 946684800 (well-known).
        assert_eq!(parse_datetime("2000-01-01"), Some(946_684_800));
        assert_eq!(
            parse_datetime("2000-01-01 12:30:45"),
            Some(946_684_800 + 45045)
        );
        assert_eq!(parse_datetime("2021-06-15T08:00:00Z"), Some(1_623_744_000));
    }

    #[test]
    fn pre_epoch_dates() {
        assert_eq!(parse_datetime("1969-12-31"), Some(-86_400));
    }

    #[test]
    fn leap_years_handled() {
        assert!(parse_datetime("2020-02-29").is_some());
        assert!(parse_datetime("2021-02-29").is_none());
        assert!(parse_datetime("2000-02-29").is_some()); // 400-year rule
        assert!(parse_datetime("1900-02-29").is_none()); // 100-year rule
    }

    #[test]
    fn garbage_rejected() {
        for s in [
            "",
            "hello",
            "2020-13-01",
            "2020-00-10",
            "2020-01-32",
            "2020-1",
            "12:30:00",
            "1-2-3",
            "3-10-5",
            "12345-01-01",
            "0-1-1",
            "-2020-01-01",
            "2020-01-01T25:00:00",
            "2020-01-01T10:61:00",
            "2020-01-01-05",
        ] {
            assert_eq!(parse_datetime(s), None, "{s:?} should not parse");
        }
    }

    #[test]
    fn ordering_is_preserved() {
        let a = parse_datetime("1999-12-31T23:59:59").unwrap();
        let b = parse_datetime("2000-01-01T00:00:00").unwrap();
        assert_eq!(b - a, 1);
    }

    #[test]
    fn looks_like() {
        assert!(looks_like_datetime("2024-05-17"));
        assert!(!looks_like_datetime("customer_17"));
    }
}
