//! # leva-relational
//!
//! The in-memory relational substrate underneath the Leva reproduction:
//! typed cell [`Value`]s, columnar [`Table`]s, [`Database`] collections with
//! optional oracle KFK metadata, a from-scratch CSV reader/writer, column
//! statistics (distinct ratio, kurtosis, quantiles) consumed by the
//! textification stage, and the join operators used by the paper's oracle
//! baselines.
//!
//! Leva itself (see the `leva` crate) never reads declared keys or join
//! paths — that metadata exists purely so the *Full* / *Full+FE* baselines
//! can act as the human-with-perfect-schema-knowledge upper bound that the
//! paper compares against.

#![warn(missing_docs)]

mod column;
mod database;
mod datetime;
mod error;
mod join;
mod stats;
mod table;
mod value;

pub mod csv;
pub mod ingest;

pub use column::{Column, DataType};
pub use csv::Ingested;
pub use database::{Database, ForeignKey};
pub use datetime::{looks_like_datetime, parse_datetime};
pub use error::{RelationalError, Result};
pub use ingest::{CellIssue, IngestMode, IngestOptions, IngestReport, IssueReason};
pub use join::{augment_join, hash_join, JoinKind};
pub use stats::{
    column_stats, excess_kurtosis, mean, quantile, quantile_sorted, sentinel_fraction, std_dev,
    ColumnStats,
};
pub use table::Table;
pub use value::Value;
