//! Cell values.
//!
//! Leva treats relational data as *dirty by default*: missing values may be
//! encoded as real nulls, or as sentinel strings such as `"?"`/`"N/A"` that
//! only the downstream voting mechanism (see `leva-graph`) can identify.
//! `Value` therefore keeps sentinel strings as ordinary text and reserves
//! [`Value::Null`] for values that are *known* missing at ingestion time.

use std::fmt;

/// A single relational cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Known-missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Non-finite values (NaN, ±inf) are normalized to
    /// [`Value::Null`] by [`Value::float`].
    Float(f64),
    /// Arbitrary text (may be a dirty missing-value sentinel).
    Text(String),
    /// Boolean flag.
    Bool(bool),
    /// Seconds since the Unix epoch. Kept distinct from `Int` so the
    /// textifier can apply datetime-specific quantization.
    Timestamp(i64),
}

impl Value {
    /// Builds a float value, mapping every non-finite input (NaN, `inf`,
    /// `-inf`) to `Null` so that downstream statistics never observe a
    /// value they cannot order or average.
    pub fn float(v: f64) -> Self {
        if v.is_finite() {
            Value::Float(v)
        } else {
            Value::Null
        }
    }

    /// Builds a text value, trimming surrounding whitespace. Empty strings
    /// become `Null`.
    pub fn text(v: impl Into<String>) -> Self {
        let s: String = v.into();
        let trimmed = s.trim();
        if trimmed.is_empty() {
            Value::Null
        } else if trimmed.len() == s.len() {
            Value::Text(s)
        } else {
            Value::Text(trimmed.to_owned())
        }
    }

    /// True when the value is a real (ingestion-time) null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints, floats, bools, and timestamps coerce to `f64`;
    /// numeric-looking text parses; everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Timestamp(v) => Some(*v as f64),
            Value::Text(s) => s.trim().parse::<f64>().ok().filter(|v| v.is_finite()),
            Value::Null => None,
        }
    }

    /// Integer view without loss; text that parses as i64 is accepted.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Timestamp(v) => Some(*v),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 2f64.powi(53) => Some(*v as i64),
            Value::Text(s) => s.trim().parse::<i64>().ok(),
            _ => None,
        }
    }

    /// Text view (borrowed); only `Text` values qualify.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical string rendering used by the textifier for direct encoding.
    /// Floats are rendered with up to 12 significant digits so equal floats
    /// always produce equal tokens.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format_float(*v),
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Timestamp(v) => v.to_string(),
        }
    }
}

/// Renders a float deterministically: integral floats drop the fraction so
/// `3.0` and `3` textify identically.
fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let mut s = format!("{v:.12}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
        s
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_becomes_null() {
        assert!(Value::float(f64::NAN).is_null());
        assert!(Value::float(f64::INFINITY).is_null());
        assert!(Value::float(f64::NEG_INFINITY).is_null());
        assert!(!Value::float(1.5).is_null());
        assert!(!Value::float(f64::MAX).is_null());
    }

    #[test]
    fn non_finite_text_has_no_numeric_view() {
        for s in ["inf", "-inf", "infinity", "NaN", "nan", "1e999"] {
            assert_eq!(Value::Text(s.into()).as_f64(), None, "{s:?}");
        }
        assert_eq!(Value::Text("1e300".into()).as_f64(), Some(1e300));
    }

    #[test]
    fn empty_text_becomes_null() {
        assert!(Value::text("   ").is_null());
        assert_eq!(Value::text(" a "), Value::Text("a".into()));
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Text("2.5".into()).as_f64(), Some(2.5));
        assert_eq!(Value::Text("abc".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn integer_coercion_is_lossless() {
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Text("42".into()).as_i64(), Some(42));
    }

    #[test]
    fn float_render_is_canonical() {
        assert_eq!(Value::Float(3.0).render(), "3");
        assert_eq!(Value::Int(3).render(), "3");
        assert_eq!(Value::Float(2.5).render(), "2.5");
    }

    #[test]
    fn display_marks_null() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
    }
}
