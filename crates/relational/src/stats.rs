//! Column statistics used by the textifier (§4.1 of the paper):
//! distinct ratio (key detection), excess kurtosis (histogram-type choice),
//! quantiles (equi-depth bin boundaries), and missing-value census.

use crate::column::Column;
use crate::value::Value;
use std::collections::HashSet;

/// Summary statistics for a column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of rows, including nulls.
    pub len: usize,
    /// Number of non-null values.
    pub non_null: usize,
    /// Number of distinct non-null rendered values.
    pub distinct: usize,
    /// distinct / non_null (0 when the column is all null).
    pub distinct_ratio: f64,
    /// Mean of numeric values (None when no numeric values exist).
    pub mean: Option<f64>,
    /// Population standard deviation of numeric values.
    pub std_dev: Option<f64>,
    /// Excess kurtosis of numeric values (normal distribution => 0).
    pub excess_kurtosis: Option<f64>,
    /// Minimum numeric value.
    pub min: Option<f64>,
    /// Maximum numeric value.
    pub max: Option<f64>,
}

/// Computes [`ColumnStats`] for a column.
pub fn column_stats(column: &Column) -> ColumnStats {
    let len = column.len();
    let mut distinct: HashSet<String> = HashSet::new();
    let mut non_null = 0usize;
    for v in column.values() {
        if !v.is_null() {
            non_null += 1;
            distinct.insert(v.render());
        }
    }
    let nums: Vec<f64> = column.numeric_values().collect();
    let (mean, std_dev, kurt, min, max) = if nums.is_empty() {
        (None, None, None, None, None)
    } else {
        let m = mean(&nums);
        let sd = std_dev(&nums, m);
        let k = excess_kurtosis(&nums, m, sd);
        let mn = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let mx = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (Some(m), Some(sd), k, Some(mn), Some(mx))
    };
    ColumnStats {
        len,
        non_null,
        distinct: distinct.len(),
        distinct_ratio: if non_null == 0 {
            0.0
        } else {
            distinct.len() as f64 / non_null as f64
        },
        mean,
        std_dev,
        excess_kurtosis: kurt,
        min,
        max,
    }
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64], mean: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Excess kurtosis: E[(x-μ)⁴]/σ⁴ − 3. `None` when the distribution is
/// degenerate (σ ≈ 0) — the textifier treats that as light-tailed.
pub fn excess_kurtosis(values: &[f64], mean: f64, std_dev: f64) -> Option<f64> {
    if values.len() < 4 || std_dev < 1e-12 {
        return None;
    }
    let m4 = values.iter().map(|v| (v - mean).powi(4)).sum::<f64>() / values.len() as f64;
    Some(m4 / std_dev.powi(4) - 3.0)
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a slice using linear interpolation on a
/// sorted copy. Used to derive equi-depth histogram boundaries.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    // NaN cannot reach here from ingested columns (non-finite values never
    // enter numeric views), but callers may pass arbitrary slices: drop
    // non-finite entries instead of panicking mid-sort.
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_unstable_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// Quantile over an already-sorted slice (no allocation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fraction of rows whose rendered value appears in a set of common textual
/// missing-data sentinels. Used only for *reporting* dataset characteristics
/// (Table 4); the pipeline itself detects sentinels dynamically by voting.
pub fn sentinel_fraction(column: &Column) -> f64 {
    const SENTINELS: [&str; 7] = ["?", "null", "na", "n/a", "none", "missing", "-"];
    if column.is_empty() {
        return 0.0;
    }
    let hits = column
        .values()
        .iter()
        .filter(|v| match v {
            Value::Null => true,
            Value::Text(s) => SENTINELS.contains(&s.to_ascii_lowercase().as_str()),
            _ => false,
        })
        .count();
    hits as f64 / column.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let c = Column::from_values(
            "c",
            vec![Value::Int(1), Value::Int(2), Value::Int(2), Value::Null],
        );
        let s = column_stats(&c);
        assert_eq!(s.len, 4);
        assert_eq!(s.non_null, 3);
        assert_eq!(s.distinct, 2);
        assert!((s.distinct_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(2.0));
    }

    #[test]
    fn kurtosis_of_uniformish_data_is_negative() {
        // A uniform distribution has excess kurtosis -1.2.
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let m = mean(&vals);
        let sd = std_dev(&vals, m);
        let k = excess_kurtosis(&vals, m, sd).unwrap();
        assert!((k - (-1.2)).abs() < 0.05, "k = {k}");
    }

    #[test]
    fn kurtosis_of_heavy_tail_is_positive() {
        // Mostly zeros with huge outliers => leptokurtic.
        let mut vals = vec![0.0f64; 100];
        vals.push(1000.0);
        vals.push(-1000.0);
        let m = mean(&vals);
        let sd = std_dev(&vals, m);
        assert!(excess_kurtosis(&vals, m, sd).unwrap() > 10.0);
    }

    #[test]
    fn kurtosis_degenerate_is_none() {
        let vals = vec![5.0; 10];
        assert_eq!(excess_kurtosis(&vals, 5.0, 0.0), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let vals = vec![3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&vals, 0.0), Some(1.0));
        assert_eq!(quantile(&vals, 1.0), Some(4.0));
        assert_eq!(quantile(&vals, 0.5), Some(2.5));
        assert_eq!(quantile(&vals, 2.0), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_survives_non_finite_input() {
        let vals = vec![f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY];
        assert_eq!(quantile(&vals, 0.5), Some(2.0));
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
        assert_eq!(quantile(&[f64::INFINITY, f64::NEG_INFINITY], 0.5), None);
    }

    #[test]
    fn column_stats_ignore_non_finite_text() {
        // Ingestion keeps "inf"/"NaN" as text; the numeric view must skip
        // them so mean/min/max stay finite.
        let c = Column::from_values(
            "c",
            vec![
                Value::Text("inf".into()),
                Value::Text("NaN".into()),
                Value::Int(2),
                Value::Int(4),
            ],
        );
        let s = column_stats(&c);
        assert_eq!(s.mean, Some(3.0));
        assert_eq!(s.min, Some(2.0));
        assert_eq!(s.max, Some(4.0));
    }

    #[test]
    fn sentinel_census() {
        let c = Column::from_values(
            "c",
            vec![
                Value::Text("?".into()),
                Value::Text("ok".into()),
                Value::Null,
                Value::Text("N/A".into()),
            ],
        );
        assert!((sentinel_fraction(&c) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn distinct_uses_rendered_equality() {
        // 3.0 (float) and 3 (int) render identically and count once.
        let c = Column::from_values("c", vec![Value::Float(3.0), Value::Int(3)]);
        assert_eq!(column_stats(&c).distinct, 1);
    }
}
