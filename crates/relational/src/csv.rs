//! Minimal CSV reader/writer (RFC-4180 style quoting) for the relational
//! substrate. Implemented from scratch to keep the dependency surface small.
//!
//! Reading infers per-cell value types: integers, floats, booleans, and text.
//! Empty fields become [`Value::Null`]; missing-value *sentinels* (`"?"`,
//! `"N/A"`, ...) are deliberately kept as text so the graph-refinement voting
//! mechanism can discover them, as in the paper.

use crate::error::{RelationalError, Result};
use crate::table::Table;
use crate::value::Value;
use std::io::{BufRead, Write};

/// Parses CSV from a reader into a [`Table`]. The first record is the header.
pub fn read_csv<R: BufRead>(name: &str, reader: R) -> Result<Table> {
    let mut records = parse_records(reader)?;
    if records.is_empty() {
        return Ok(Table::new(name, Vec::<String>::new()));
    }
    let header = records.remove(0);
    let mut table = Table::new(name, header.clone());
    for (i, rec) in records.into_iter().enumerate() {
        if rec.len() != header.len() {
            return Err(RelationalError::Csv {
                line: i + 2,
                message: format!("expected {} fields, got {}", header.len(), rec.len()),
            });
        }
        table.push_row(rec.into_iter().map(|f| parse_cell(&f)).collect())?;
    }
    Ok(table)
}

/// Parses a CSV string into a table.
pub fn read_csv_str(name: &str, data: &str) -> Result<Table> {
    read_csv(name, data.as_bytes())
}

/// Writes a table as CSV.
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> std::io::Result<()> {
    let header: Vec<String> = table
        .column_names()
        .iter()
        .map(|n| escape_field(n))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for r in 0..table.row_count() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| escape_field(&c.get(r).map(Value::render).unwrap_or_default()))
            .collect();
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Serializes a table to a CSV string.
pub fn write_csv_string(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

fn parse_cell(field: &str) -> Value {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = trimmed.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = trimmed.parse::<f64>() {
        return Value::float(f);
    }
    match trimmed {
        "true" | "TRUE" | "True" => return Value::Bool(true),
        "false" | "FALSE" | "False" => return Value::Bool(false),
        _ => {}
    }
    if let Some(ts) = crate::datetime::parse_datetime(trimmed) {
        return Value::Timestamp(ts);
    }
    Value::Text(field.to_owned())
}

fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Streaming state machine over the raw bytes; handles quoted fields with
/// embedded commas, quotes, and newlines.
fn parse_records<R: BufRead>(mut reader: R) -> Result<Vec<Vec<String>>> {
    let mut data = String::new();
    reader
        .read_to_string(&mut data)
        .map_err(|e| RelationalError::Csv {
            line: 0,
            message: e.to_string(),
        })?;
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = data.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(RelationalError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    // Skip completely blank lines.
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(std::mem::take(&mut record));
                    } else {
                        record.clear();
                    }
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelationalError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        if !(record.len() == 1 && record[0].is_empty()) {
            records.push(record);
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let csv = "a,b,c\n1,2.5,hello\n,true,\"x,y\"\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, 0).unwrap(), &Value::Int(1));
        assert_eq!(t.value(0, 1).unwrap(), &Value::Float(2.5));
        assert_eq!(t.value(1, 0).unwrap(), &Value::Null);
        assert_eq!(t.value(1, 1).unwrap(), &Value::Bool(true));
        assert_eq!(t.value(1, 2).unwrap(), &Value::Text("x,y".into()));
        let back = write_csv_string(&t);
        let t2 = read_csv_str("t", &back).unwrap();
        assert_eq!(t.row_count(), t2.row_count());
        assert_eq!(t.value(1, 2).unwrap(), t2.value(1, 2).unwrap());
    }

    #[test]
    fn quoted_quote_and_newline() {
        let csv = "a\n\"he said \"\"hi\"\"\"\n\"line1\nline2\"\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(
            t.value(0, 0).unwrap(),
            &Value::Text("he said \"hi\"".into())
        );
        assert_eq!(t.value(1, 0).unwrap(), &Value::Text("line1\nline2".into()));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_csv_str("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(err, RelationalError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv_str("t", "a\n\"oops\n").is_err());
    }

    #[test]
    fn sentinels_stay_textual() {
        let t = read_csv_str("t", "a\n?\nN/A\n").unwrap();
        assert_eq!(t.value(0, 0).unwrap(), &Value::Text("?".into()));
        assert_eq!(t.value(1, 0).unwrap(), &Value::Text("N/A".into()));
    }

    #[test]
    fn blank_lines_skipped_and_crlf() {
        let t = read_csv_str("t", "a,b\r\n1,2\r\n\r\n3,4\r\n").unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn empty_input() {
        let t = read_csv_str("t", "").unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }

    #[test]
    fn iso_dates_become_timestamps() {
        let t = read_csv_str("t", "when\n2000-01-01\n2000-01-01 00:00:10\nnot a date\n").unwrap();
        assert_eq!(t.value(0, 0).unwrap(), &Value::Timestamp(946_684_800));
        assert_eq!(t.value(1, 0).unwrap(), &Value::Timestamp(946_684_810));
        assert!(matches!(t.value(2, 0).unwrap(), Value::Text(_)));
    }

    #[test]
    fn missing_trailing_newline() {
        let t = read_csv_str("t", "a,b\n1,2").unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.value(0, 1).unwrap(), &Value::Int(2));
    }
}
