//! Minimal CSV reader/writer (RFC-4180 style quoting) for the relational
//! substrate. Implemented from scratch to keep the dependency surface small.
//!
//! Reading infers per-cell value types: integers, floats, booleans, and text.
//! Empty fields become [`Value::Null`]; missing-value *sentinels* (`"?"`,
//! `"N/A"`, `"inf"`, `"NaN"`, ...) are deliberately kept as text so the
//! graph-refinement voting mechanism can discover them, as in the paper.
//! Numeric cells are coerced only when the canonical rendering round-trips
//! the original trimmed text — `"007"` and `"+7"` stay text so a zero-padded
//! join key textifies to the same token everywhere it appears.
//!
//! Ingestion runs under an [`IngestOptions`] contract: strict mode rejects
//! structural corruption with typed [`RelationalError`]s; lenient mode
//! repairs it and quarantines every repair into an [`IngestReport`] (see the
//! `ingest` module docs for the full taxonomy).

use crate::error::{RelationalError, Result};
use crate::ingest::{CellIssue, IngestMode, IngestOptions, IngestReport, IssueReason};
use crate::table::Table;
use crate::value::Value;
use std::io::{BufRead, Write};

/// Sentinel spellings tallied into the report's census. Lowercased; the
/// pipeline itself detects sentinels dynamically by voting — the census is
/// purely diagnostic.
const SENTINEL_SPELLINGS: [&str; 13] = [
    "?",
    "null",
    "na",
    "n/a",
    "none",
    "missing",
    "-",
    "nan",
    "inf",
    "-inf",
    "+inf",
    "infinity",
    "-infinity",
];

/// A parsed table together with its ingestion report.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The parsed table.
    pub table: Table,
    /// What ingestion repaired and censused along the way.
    pub report: IngestReport,
}

/// Parses CSV from a reader into a [`Table`] under strict ingestion. The
/// first record is the header.
pub fn read_csv<R: BufRead>(name: &str, reader: R) -> Result<Table> {
    read_csv_with(name, reader, &IngestOptions::strict()).map(|i| i.table)
}

/// Parses a CSV string into a table under strict ingestion.
pub fn read_csv_str(name: &str, data: &str) -> Result<Table> {
    read_csv_str_with(name, data, &IngestOptions::strict()).map(|i| i.table)
}

/// Parses CSV from a reader under the given ingestion options, returning the
/// table plus the quarantine report.
pub fn read_csv_with<R: BufRead>(
    name: &str,
    mut reader: R,
    opts: &IngestOptions,
) -> Result<Ingested> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|e| RelationalError::Csv {
            line: 0,
            message: e.to_string(),
        })?;
    read_csv_bytes(name, &bytes, opts)
}

/// Parses a CSV string under the given ingestion options.
pub fn read_csv_str_with(name: &str, data: &str, opts: &IngestOptions) -> Result<Ingested> {
    let mut report = IngestReport::new(name);
    parse_csv(name, data, opts, &mut report).map(|table| Ingested { table, report })
}

/// Parses raw CSV bytes under the given ingestion options. Strict mode
/// rejects invalid UTF-8; lenient mode substitutes replacement characters
/// and records the repair.
pub fn read_csv_bytes(name: &str, bytes: &[u8], opts: &IngestOptions) -> Result<Ingested> {
    let mut report = IngestReport::new(name);
    let data: std::borrow::Cow<'_, str> = match std::str::from_utf8(bytes) {
        Ok(s) => s.into(),
        Err(e) if opts.mode == IngestMode::Strict => {
            return Err(RelationalError::Csv {
                line: 0,
                message: format!("invalid UTF-8 at byte {}", e.valid_up_to()),
            });
        }
        Err(_) => {
            report.record(
                CellIssue {
                    line: 0,
                    column: 0,
                    value: String::new(),
                    reason: IssueReason::InvalidUtf8,
                },
                opts.max_recorded_issues,
            );
            String::from_utf8_lossy(bytes)
        }
    };
    parse_csv(name, &data, opts, &mut report).map(|table| Ingested { table, report })
}

/// Writes a table as CSV.
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> std::io::Result<()> {
    let header: Vec<String> = table
        .column_names()
        .iter()
        .map(|n| escape_field(n))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for r in 0..table.row_count() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| escape_field(&c.get(r).map(Value::render).unwrap_or_default()))
            .collect();
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Serializes a table to a CSV string.
pub fn write_csv_string(table: &Table) -> String {
    let mut buf = Vec::new();
    // Writing into a Vec is infallible; a failure would only surface as a
    // shorter buffer, never a panic.
    let _ = write_csv(table, &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// How a cell's parse went, for the report census.
enum CellFlag {
    Clean,
    /// Numeric parse produced `inf`/`NaN`; kept as text.
    NonFinite,
    /// Numeric parse succeeded but does not round-trip (`007`, `2.50`);
    /// kept as text.
    NonCanonical,
}

fn parse_cell(field: &str) -> (Value, CellFlag) {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return (Value::Null, CellFlag::Clean);
    }
    let mut flag = CellFlag::Clean;
    if let Ok(i) = trimmed.parse::<i64>() {
        // Coerce only when the canonical rendering round-trips the text:
        // "007" and "+7" must keep their exact spelling or zero-padded join
        // keys stop matching their quoted counterparts in other tables.
        if i.to_string() == trimmed {
            return (Value::Int(i), CellFlag::Clean);
        }
        flag = CellFlag::NonCanonical;
    }
    if let Ok(f) = trimmed.parse::<f64>() {
        if f.is_finite() {
            if Value::Float(f).render() == trimmed {
                return (Value::Float(f), CellFlag::Clean);
            }
            flag = CellFlag::NonCanonical;
        } else {
            // "inf", "-infinity", "NaN", "1e999", ... stay textual so the
            // voting mechanism can discover them as sentinels.
            flag = CellFlag::NonFinite;
        }
    }
    match trimmed {
        "true" | "TRUE" | "True" => return (Value::Bool(true), CellFlag::Clean),
        "false" | "FALSE" | "False" => return (Value::Bool(false), CellFlag::Clean),
        _ => {}
    }
    if let Some(ts) = crate::datetime::parse_datetime(trimmed) {
        return (Value::Timestamp(ts), CellFlag::Clean);
    }
    (Value::Text(field.to_owned()), flag)
}

fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// One raw record: the 1-based line it started on plus its fields.
struct RawRecord {
    line: usize,
    fields: Vec<String>,
}

/// Full CSV parse: records → header/rows → typed cells, under one options
/// contract. The single entry point behind every public `read_csv*`.
fn parse_csv(
    name: &str,
    data: &str,
    opts: &IngestOptions,
    report: &mut IngestReport,
) -> Result<Table> {
    let lenient = opts.mode == IngestMode::Lenient;
    let cap = opts.max_recorded_issues;
    let mut records = parse_records(name, data, lenient, report, cap)?;
    if records.is_empty() {
        return Ok(Table::new(name, Vec::<String>::new()));
    }
    let header = records.remove(0);
    let width = header.fields.len();
    let mut table = Table::new(name, header.fields);
    for rec in records {
        let RawRecord { line, mut fields } = rec;
        if fields.len() != width {
            if !lenient {
                return Err(RelationalError::BadCell {
                    table: name.to_owned(),
                    line,
                    column: fields.len().min(width),
                    reason: format!("expected {} fields, got {}", width, fields.len()),
                });
            }
            report.rows_ragged += 1;
            let reason = if fields.len() < width {
                IssueReason::RaggedRowPadded
            } else {
                IssueReason::RaggedRowTruncated
            };
            report.record(
                CellIssue {
                    line,
                    column: fields.len().min(width),
                    value: String::new(),
                    reason,
                },
                cap,
            );
            fields.resize(width, String::new());
        }
        let mut row = Vec::with_capacity(width);
        for (column, field) in fields.iter().enumerate() {
            let (value, flag) = parse_cell(field);
            let reason = match flag {
                CellFlag::Clean => None,
                CellFlag::NonFinite => {
                    report.cells_non_finite += 1;
                    Some(IssueReason::NonFiniteNumeric)
                }
                CellFlag::NonCanonical => {
                    report.cells_non_canonical += 1;
                    Some(IssueReason::NonCanonicalNumeric)
                }
            };
            if let Some(reason) = reason {
                report.record(
                    CellIssue {
                        line,
                        column,
                        value: field.trim().to_owned(),
                        reason,
                    },
                    cap,
                );
            }
            if let Value::Text(s) = &value {
                let lower = s.trim().to_ascii_lowercase();
                if SENTINEL_SPELLINGS.contains(&lower.as_str()) {
                    *report.sentinel_census.entry(lower).or_insert(0) += 1;
                }
            }
            row.push(value);
        }
        table.push_row(row)?;
        report.rows_ingested += 1;
    }
    Ok(table)
}

/// Streaming state machine over the raw text; handles quoted fields with
/// embedded commas, quotes, and newlines. A `\r` is swallowed only when it
/// immediately precedes `\n` (CRLF line endings); a bare `\r` is field data.
fn parse_records(
    name: &str,
    data: &str,
    lenient: bool,
    report: &mut IngestReport,
    cap: usize,
) -> Result<Vec<RawRecord>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut record_line = 1usize;
    let mut chars = data.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else if lenient {
                        report.quote_repairs += 1;
                        report.record(
                            CellIssue {
                                line,
                                column: record.len(),
                                value: field.clone(),
                                reason: IssueReason::BareQuote,
                            },
                            cap,
                        );
                        field.push('"');
                    } else {
                        return Err(RelationalError::BadCell {
                            table: name.to_owned(),
                            line,
                            column: record.len(),
                            reason: "quote inside unquoted field".to_owned(),
                        });
                    }
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() != Some(&'\n') {
                        field.push('\r');
                    }
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    // Skip completely blank lines.
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(RawRecord {
                            line: record_line,
                            fields: std::mem::take(&mut record),
                        });
                    } else {
                        record.clear();
                    }
                    record_line = line;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        if !lenient {
            return Err(RelationalError::BadCell {
                table: name.to_owned(),
                line,
                column: record.len(),
                reason: "unterminated quoted field".to_owned(),
            });
        }
        report.quote_repairs += 1;
        report.record(
            CellIssue {
                line,
                column: record.len(),
                value: field.clone(),
                reason: IssueReason::UnterminatedQuote,
            },
            cap,
        );
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        if !(record.len() == 1 && record[0].is_empty()) {
            records.push(RawRecord {
                line: record_line,
                fields: record,
            });
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let csv = "a,b,c\n1,2.5,hello\n,true,\"x,y\"\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, 0).unwrap(), &Value::Int(1));
        assert_eq!(t.value(0, 1).unwrap(), &Value::Float(2.5));
        assert_eq!(t.value(1, 0).unwrap(), &Value::Null);
        assert_eq!(t.value(1, 1).unwrap(), &Value::Bool(true));
        assert_eq!(t.value(1, 2).unwrap(), &Value::Text("x,y".into()));
        let back = write_csv_string(&t);
        let t2 = read_csv_str("t", &back).unwrap();
        assert_eq!(t.row_count(), t2.row_count());
        assert_eq!(t.value(1, 2).unwrap(), t2.value(1, 2).unwrap());
    }

    #[test]
    fn quoted_quote_and_newline() {
        let csv = "a\n\"he said \"\"hi\"\"\"\n\"line1\nline2\"\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(
            t.value(0, 0).unwrap(),
            &Value::Text("he said \"hi\"".into())
        );
        assert_eq!(t.value(1, 0).unwrap(), &Value::Text("line1\nline2".into()));
    }

    #[test]
    fn ragged_rows_rejected_with_context() {
        let err = read_csv_str("t", "a,b\n1\n").unwrap_err();
        match err {
            RelationalError::BadCell {
                table,
                line,
                column,
                reason,
            } => {
                assert_eq!(table, "t");
                assert_eq!(line, 2);
                assert_eq!(column, 1);
                assert!(reason.contains("expected 2 fields"));
            }
            other => panic!("expected BadCell, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_quarantined_in_lenient_mode() {
        let csv = "a,b\n1\n2,3,4\n5,6\n";
        let i = read_csv_str_with("t", csv, &IngestOptions::lenient()).unwrap();
        assert_eq!(i.table.row_count(), 3);
        // Short row padded with null, long row truncated.
        assert!(i.table.value(0, 1).unwrap().is_null());
        assert_eq!(i.table.value(1, 0).unwrap(), &Value::Int(2));
        assert_eq!(i.report.rows_ragged, 2);
        assert!(i
            .report
            .issues
            .iter()
            .any(|c| c.reason == IssueReason::RaggedRowPadded));
        assert!(i
            .report
            .issues
            .iter()
            .any(|c| c.reason == IssueReason::RaggedRowTruncated));
    }

    #[test]
    fn unterminated_quote_rejected_strict_recovered_lenient() {
        assert!(read_csv_str("t", "a\n\"oops\n").is_err());
        let i = read_csv_str_with("t", "a\n\"oops\n", &IngestOptions::lenient()).unwrap();
        assert_eq!(i.table.row_count(), 1);
        assert_eq!(i.table.value(0, 0).unwrap(), &Value::Text("oops\n".into()));
        assert_eq!(i.report.quote_repairs, 1);
    }

    #[test]
    fn bare_quote_rejected_strict_recovered_lenient() {
        let err = read_csv_str("t", "a\nx\"y\n").unwrap_err();
        assert!(matches!(err, RelationalError::BadCell { line: 2, .. }));
        let i = read_csv_str_with("t", "a\nx\"y\n", &IngestOptions::lenient()).unwrap();
        assert_eq!(i.table.value(0, 0).unwrap(), &Value::Text("x\"y".into()));
        assert!(i
            .report
            .issues
            .iter()
            .any(|c| c.reason == IssueReason::BareQuote));
    }

    #[test]
    fn sentinels_stay_textual_and_are_censused() {
        let i = read_csv_str_with("t", "a\n?\nN/A\n?\n", &IngestOptions::lenient()).unwrap();
        assert_eq!(i.table.value(0, 0).unwrap(), &Value::Text("?".into()));
        assert_eq!(i.table.value(1, 0).unwrap(), &Value::Text("N/A".into()));
        assert_eq!(i.report.sentinel_census.get("?"), Some(&2));
        assert_eq!(i.report.sentinel_census.get("n/a"), Some(&1));
    }

    #[test]
    fn non_finite_numerics_stay_textual() {
        let csv = "a\ninf\nInfinity\n-inf\nNaN\n1e999\n2.5\n";
        let i = read_csv_str_with("t", csv, &IngestOptions::lenient()).unwrap();
        for r in 0..5 {
            assert!(
                matches!(i.table.value(r, 0).unwrap(), Value::Text(_)),
                "row {r} must stay text"
            );
        }
        assert_eq!(i.table.value(5, 0).unwrap(), &Value::Float(2.5));
        assert_eq!(i.report.cells_non_finite, 5);
        // Non-finite spellings also land in the sentinel census.
        assert_eq!(i.report.sentinel_census.get("inf"), Some(&1));
        assert_eq!(i.report.sentinel_census.get("nan"), Some(&1));
    }

    #[test]
    fn non_canonical_numerics_keep_identity() {
        let csv = "k\n007\n+7\n7\n2.50\n-0\n1e3\n";
        let i = read_csv_str_with("t", csv, &IngestOptions::lenient()).unwrap();
        assert_eq!(i.table.value(0, 0).unwrap(), &Value::Text("007".into()));
        assert_eq!(i.table.value(1, 0).unwrap(), &Value::Text("+7".into()));
        assert_eq!(i.table.value(2, 0).unwrap(), &Value::Int(7));
        assert_eq!(i.table.value(3, 0).unwrap(), &Value::Text("2.50".into()));
        assert_eq!(i.table.value(4, 0).unwrap(), &Value::Text("-0".into()));
        assert_eq!(i.table.value(5, 0).unwrap(), &Value::Text("1e3".into()));
        assert_eq!(i.report.cells_non_canonical, 5);
    }

    #[test]
    fn bare_cr_survives_write_read_roundtrip() {
        let mut t = Table::new("t", vec!["a"]);
        t.push_row(vec![Value::Text("x\ry".into())]).unwrap();
        let s = write_csv_string(&t);
        assert!(s.contains('"'), "CR field must be quoted: {s:?}");
        let back = read_csv_str("t", &s).unwrap();
        assert_eq!(back.value(0, 0).unwrap(), &Value::Text("x\ry".into()));
    }

    #[test]
    fn bare_cr_in_unquoted_field_is_data() {
        let t = read_csv_str("t", "a,b\nx\ry,z\n").unwrap();
        assert_eq!(t.value(0, 0).unwrap(), &Value::Text("x\ry".into()));
        assert_eq!(t.value(0, 1).unwrap(), &Value::Text("z".into()));
    }

    #[test]
    fn blank_lines_skipped_and_crlf() {
        let t = read_csv_str("t", "a,b\r\n1,2\r\n\r\n3,4\r\n").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(1, 1).unwrap(), &Value::Int(4));
    }

    #[test]
    fn empty_input() {
        let t = read_csv_str("t", "").unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }

    #[test]
    fn iso_dates_become_timestamps() {
        let t = read_csv_str("t", "when\n2000-01-01\n2000-01-01 00:00:10\nnot a date\n").unwrap();
        assert_eq!(t.value(0, 0).unwrap(), &Value::Timestamp(946_684_800));
        assert_eq!(t.value(1, 0).unwrap(), &Value::Timestamp(946_684_810));
        assert!(matches!(t.value(2, 0).unwrap(), Value::Text(_)));
    }

    #[test]
    fn missing_trailing_newline() {
        let t = read_csv_str("t", "a,b\n1,2").unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.value(0, 1).unwrap(), &Value::Int(2));
    }

    #[test]
    fn invalid_utf8_strict_errors_lenient_replaces() {
        let bytes = b"a,b\n1,\xff\xfe\n";
        assert!(read_csv_bytes("t", bytes, &IngestOptions::strict()).is_err());
        let i = read_csv_bytes("t", bytes, &IngestOptions::lenient()).unwrap();
        assert_eq!(i.table.row_count(), 1);
        assert!(i
            .report
            .issues
            .iter()
            .any(|c| c.reason == IssueReason::InvalidUtf8));
    }

    #[test]
    fn quoted_newline_keeps_line_numbers_for_later_errors() {
        // The quoted field spans two physical lines; the ragged row after it
        // must report its true physical line (4).
        let err = read_csv_str("t", "a,b\n\"x\ny\",2\n1\n").unwrap_err();
        assert!(
            matches!(err, RelationalError::BadCell { line: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn strict_mode_still_censuses_dirt() {
        let i = read_csv_str_with("t", "a\ninf\n007\n?\n", &IngestOptions::strict()).unwrap();
        assert_eq!(i.report.cells_non_finite, 1);
        assert_eq!(i.report.cells_non_canonical, 1);
        assert_eq!(i.report.sentinel_census.get("?"), Some(&1));
        assert!(!i.report.is_clean());
    }
}
