//! Joins.
//!
//! Two flavours are provided:
//!
//! * [`hash_join`] — a classic row-multiplying hash join.
//! * [`augment_join`] — the cardinality-preserving left join the paper's
//!   *Full Table* baseline needs: the base table keeps exactly one output row
//!   per input row, and 1:N / N:M matches on the other side are aggregated
//!   (numeric → mean, everything else → mode). This is the "handle different
//!   join cardinalities" chore §2.2 describes analysts doing by hand.

use crate::column::Column;
use crate::error::Result;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Join kind for [`hash_join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching rows.
    Inner,
    /// Keep all left rows; unmatched right columns become null.
    Left,
}

/// Hash join of `left` and `right` on `left.left_col == right.right_col`
/// (matching by rendered value; nulls never match). Output columns are the
/// left columns followed by the right columns prefixed with the right table's
/// name.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_col: &str,
    right_col: &str,
    kind: JoinKind,
) -> Result<Table> {
    let lidx = left.column_index(left_col)?;
    let ridx = right.column_index(right_col)?;
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (r, v) in right.columns()[ridx].values().iter().enumerate() {
        if !v.is_null() {
            index.entry(v.render()).or_default().push(r);
        }
    }
    let out_name = format!("{}_join_{}", left.name(), right.name());
    let mut out_cols: Vec<Column> = left
        .column_names()
        .iter()
        .map(|n| Column::new((*n).to_owned()))
        .collect();
    for n in right.column_names() {
        out_cols.push(Column::new(format!("{}.{}", right.name(), n)));
    }
    let lw = left.column_count();
    let mut out = Table::from_columns(out_name, out_cols)?;
    for lr in 0..left.row_count() {
        let key = left.value(lr, lidx)?;
        let matches: &[usize] = if key.is_null() {
            &[]
        } else {
            index.get(&key.render()).map(Vec::as_slice).unwrap_or(&[])
        };
        if matches.is_empty() {
            if kind == JoinKind::Left {
                let mut row = left.row(lr)?;
                row.extend(std::iter::repeat_n(Value::Null, right.column_count()));
                out.push_row(row)?;
            }
            continue;
        }
        for &rr in matches {
            let mut row = left.row(lr)?;
            row.extend(right.row(rr)?);
            debug_assert_eq!(row.len(), lw + right.column_count());
            out.push_row(row)?;
        }
    }
    Ok(out)
}

/// Cardinality-preserving augmentation join: appends the non-key columns of
/// `other` to `base`, aggregating multiple matches so the output has exactly
/// `base.row_count()` rows.
pub fn augment_join(base: &Table, other: &Table, base_col: &str, other_col: &str) -> Result<Table> {
    let bidx = base.column_index(base_col)?;
    let oidx = other.column_index(other_col)?;
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (r, v) in other.columns()[oidx].values().iter().enumerate() {
        if !v.is_null() {
            index.entry(v.render()).or_default().push(r);
        }
    }
    let mut out = base.clone();
    out.set_name(format!("{}_aug_{}", base.name(), other.name()));
    for (ci, ocol) in other.columns().iter().enumerate() {
        if ci == oidx {
            continue; // the join key duplicates information already in base
        }
        let mut vals = Vec::with_capacity(base.row_count());
        for br in 0..base.row_count() {
            let key = base.value(br, bidx)?;
            let matches: &[usize] = if key.is_null() {
                &[]
            } else {
                index.get(&key.render()).map(Vec::as_slice).unwrap_or(&[])
            };
            vals.push(aggregate(ocol, matches));
        }
        out.add_column(Column::from_values(
            format!("{}.{}", other.name(), ocol.name()),
            vals,
        ))?;
    }
    Ok(out)
}

/// Aggregates the values of `col` at the given rows: mean for numeric
/// majorities, mode otherwise, null when no rows match.
fn aggregate(col: &Column, rows: &[usize]) -> Value {
    if rows.is_empty() {
        return Value::Null;
    }
    if rows.len() == 1 {
        return col.get(rows[0]).cloned().unwrap_or(Value::Null);
    }
    let vals: Vec<&Value> = rows
        .iter()
        .filter_map(|&r| col.get(r))
        .filter(|v| !v.is_null())
        .collect();
    if vals.is_empty() {
        return Value::Null;
    }
    let numeric: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
    if numeric.len() * 2 >= vals.len() {
        return Value::float(numeric.iter().sum::<f64>() / numeric.len() as f64);
    }
    // Mode of rendered values; ties broken by first occurrence for determinism.
    let mut counts: HashMap<String, (usize, usize)> = HashMap::new();
    for (i, v) in vals.iter().enumerate() {
        let e = counts.entry(v.render()).or_insert((0, i));
        e.0 += 1;
    }
    let best = counts
        .into_iter()
        .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
        .map(|(_, (_, i))| i)
        .unwrap_or(0);
    (*vals[best]).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Table {
        let mut t = Table::new("orders", vec!["id", "item"]);
        t.push_row(vec![Value::Int(1), Value::Text("pen".into())])
            .unwrap();
        t.push_row(vec![Value::Int(2), Value::Text("ink".into())])
            .unwrap();
        t.push_row(vec![Value::Int(3), Value::Null]).unwrap();
        t
    }

    fn prices() -> Table {
        let mut t = Table::new("prices", vec!["item", "price"]);
        t.push_row(vec![Value::Text("pen".into()), Value::Float(2.0)])
            .unwrap();
        t.push_row(vec![Value::Text("pen".into()), Value::Float(4.0)])
            .unwrap();
        t.push_row(vec![Value::Text("ink".into()), Value::Float(10.0)])
            .unwrap();
        t
    }

    #[test]
    fn inner_join_multiplies_rows() {
        let j = hash_join(&base(), &prices(), "item", "item", JoinKind::Inner).unwrap();
        assert_eq!(j.row_count(), 3); // pen x2 + ink x1; null row dropped
        assert_eq!(
            j.column_names(),
            vec!["id", "item", "prices.item", "prices.price"]
        );
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let j = hash_join(&base(), &prices(), "item", "item", JoinKind::Left).unwrap();
        assert_eq!(j.row_count(), 4);
        // The null-key base row survives with null right columns.
        let last = j.row(3).unwrap();
        assert_eq!(last[0], Value::Int(3));
        assert!(last[3].is_null());
    }

    #[test]
    fn augment_preserves_cardinality_and_aggregates() {
        let a = augment_join(&base(), &prices(), "item", "item").unwrap();
        assert_eq!(a.row_count(), 3);
        assert_eq!(a.column_names(), vec!["id", "item", "prices.price"]);
        // pen matched rows 2.0 and 4.0 => mean 3.0
        assert_eq!(a.value(0, 2).unwrap(), &Value::Float(3.0));
        assert_eq!(a.value(1, 2).unwrap(), &Value::Float(10.0));
        assert!(a.value(2, 2).unwrap().is_null());
    }

    #[test]
    fn augment_mode_for_text() {
        let mut t = Table::new("tags", vec!["item", "tag"]);
        for tag in ["a", "b", "b"] {
            t.push_row(vec![Value::Text("pen".into()), Value::Text(tag.into())])
                .unwrap();
        }
        let a = augment_join(&base(), &t, "item", "item").unwrap();
        assert_eq!(a.value(0, 2).unwrap(), &Value::Text("b".into()));
    }

    #[test]
    fn join_on_missing_column_errors() {
        assert!(hash_join(&base(), &prices(), "nope", "item", JoinKind::Inner).is_err());
        assert!(augment_join(&base(), &prices(), "item", "nope").is_err());
    }
}
