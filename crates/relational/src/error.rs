//! Error type shared by the relational substrate.

use std::fmt;

/// Errors produced while building, reading, or transforming relations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum RelationalError {
    /// A row was pushed whose arity does not match the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        actual: usize,
    },
    /// A column name was requested that does not exist in the table.
    UnknownColumn { table: String, column: String },
    /// A table name was requested that does not exist in the database.
    UnknownTable { table: String },
    /// A table with the same name was inserted twice into a database.
    DuplicateTable { table: String },
    /// A value of an unexpected type was encountered where another was required.
    TypeMismatch { context: String },
    /// Malformed CSV input (I/O failures, invalid UTF-8, ...).
    Csv { line: usize, message: String },
    /// Strict-mode ingestion rejected a structurally corrupt cell, with the
    /// full location context (1-based line, 0-based column).
    BadCell {
        table: String,
        line: usize,
        column: usize,
        reason: String,
    },
    /// An index was out of bounds for the relation.
    OutOfBounds {
        context: String,
        index: usize,
        len: usize,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArityMismatch {
                table,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch in table '{table}': expected {expected} values, got {actual}"
            ),
            Self::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            Self::UnknownTable { table } => write!(f, "unknown table '{table}'"),
            Self::DuplicateTable { table } => write!(f, "duplicate table '{table}'"),
            Self::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            Self::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            Self::BadCell {
                table,
                line,
                column,
                reason,
            } => write!(
                f,
                "bad cell in table '{table}' at line {line}, column {column}: {reason}"
            ),
            Self::OutOfBounds {
                context,
                index,
                len,
            } => {
                write!(f, "index {index} out of bounds (len {len}) in {context}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, RelationalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = RelationalError::ArityMismatch {
            table: "t".into(),
            expected: 3,
            actual: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains("'t'"));
        assert!(msg.contains('3'));
        assert!(msg.contains('2'));
    }

    #[test]
    fn errors_are_comparable() {
        let a = RelationalError::UnknownTable { table: "x".into() };
        let b = RelationalError::UnknownTable { table: "x".into() };
        assert_eq!(a, b);
    }
}
