//! Columns: a named, ordered collection of [`Value`]s with an inferred type.

use crate::value::Value;

/// The logical type of a column, inferred from its contents.
///
/// Inference is majority-driven so that dirty columns (e.g. a numeric column
/// with a few `"?"` sentinels) still classify as numeric — exactly the
/// scenario Leva's refinement stage is designed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Column of integers.
    Int,
    /// Column of floats (or mixed int/float).
    Float,
    /// Column of free text.
    Text,
    /// Column of booleans.
    Bool,
    /// Column of timestamps.
    Timestamp,
    /// Column with no non-null values.
    Unknown,
}

impl DataType {
    /// True for types the textifier treats as numeric (binnable).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

/// A named column of values.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    values: Vec<Value>,
}

impl Column {
    /// Creates an empty column.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Creates a column from existing values.
    pub fn from_values(name: impl Into<String>, values: Vec<Value>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the column in place.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a value.
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Value at `row`, if in bounds.
    pub fn get(&self, row: usize) -> Option<&Value> {
        self.values.get(row)
    }

    /// All values, in row order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values (used by noise injectors in tests and
    /// dataset generators).
    pub fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }

    /// Iterator over the non-null numeric view of the column.
    pub fn numeric_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().filter_map(Value::as_f64)
    }

    /// Infers the column's [`DataType`] by majority vote over non-null values.
    ///
    /// A column is `Float` if any float appears among otherwise-integral
    /// values; text wins only when text values are the (strict) majority of
    /// non-nulls, which keeps dirty numeric columns numeric.
    pub fn infer_type(&self) -> DataType {
        let mut ints = 0usize;
        let mut floats = 0usize;
        let mut texts = 0usize;
        let mut numeric_texts = 0usize;
        let mut bools = 0usize;
        let mut timestamps = 0usize;
        for v in &self.values {
            match v {
                Value::Int(_) => ints += 1,
                Value::Float(_) => floats += 1,
                Value::Text(s) => {
                    texts += 1;
                    if s.trim().parse::<f64>().is_ok() {
                        numeric_texts += 1;
                    }
                }
                Value::Bool(_) => bools += 1,
                Value::Timestamp(_) => timestamps += 1,
                Value::Null => {}
            }
        }
        let non_null = ints + floats + texts + bools + timestamps;
        if non_null == 0 {
            return DataType::Unknown;
        }
        // Text columns that are mostly numeric strings classify as numeric.
        let numericish = ints + floats + numeric_texts;
        let plain_text = texts - numeric_texts;
        if plain_text * 2 > non_null {
            return DataType::Text;
        }
        if timestamps * 2 > non_null {
            return DataType::Timestamp;
        }
        if bools * 2 > non_null {
            return DataType::Bool;
        }
        if numericish > 0 {
            // Distinguish integral vs floating columns among numeric values.
            let any_fractional = self.values.iter().any(|v| match v {
                Value::Float(f) => f.fract() != 0.0,
                Value::Text(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(|f| f.fract() != 0.0)
                    .unwrap_or(false),
                _ => false,
            });
            if any_fractional || floats > ints {
                return DataType::Float;
            }
            return DataType::Int;
        }
        DataType::Text
    }

    /// Count of null values (ingestion-time nulls only; sentinel strings are
    /// detected later by the voting mechanism).
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_null()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: Vec<Value>) -> Column {
        Column::from_values("c", vals)
    }

    #[test]
    fn infer_int_column() {
        let c = col(vec![Value::Int(1), Value::Int(2), Value::Null]);
        assert_eq!(c.infer_type(), DataType::Int);
    }

    #[test]
    fn infer_float_when_fractional() {
        let c = col(vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.infer_type(), DataType::Float);
    }

    #[test]
    fn dirty_numeric_column_stays_numeric() {
        // Numeric column with a sentinel: majority numeric => Int.
        let c = col(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Text("?".into()),
        ]);
        assert_eq!(c.infer_type(), DataType::Int);
    }

    #[test]
    fn numeric_strings_classify_numeric() {
        let c = col(vec![Value::Text("1".into()), Value::Text("2.5".into())]);
        assert_eq!(c.infer_type(), DataType::Float);
    }

    #[test]
    fn text_majority_wins() {
        let c = col(vec![
            Value::Text("a".into()),
            Value::Text("b".into()),
            Value::Int(1),
        ]);
        assert_eq!(c.infer_type(), DataType::Text);
    }

    #[test]
    fn all_null_is_unknown() {
        let c = col(vec![Value::Null, Value::Null]);
        assert_eq!(c.infer_type(), DataType::Unknown);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn timestamp_and_bool_inference() {
        let c = col(vec![Value::Timestamp(100), Value::Timestamp(200)]);
        assert_eq!(c.infer_type(), DataType::Timestamp);
        let c = col(vec![Value::Bool(true), Value::Bool(false), Value::Null]);
        assert_eq!(c.infer_type(), DataType::Bool);
    }

    #[test]
    fn numeric_values_skips_non_numeric() {
        let c = col(vec![
            Value::Int(1),
            Value::Text("x".into()),
            Value::Float(2.0),
        ]);
        let v: Vec<f64> = c.numeric_values().collect();
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
