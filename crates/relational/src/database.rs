//! A database is a named collection of tables plus (optional) schema
//! annotations used only by the *oracle* baselines (Full / Full+FE).
//!
//! Leva itself never reads the declared keys — its whole point is to operate
//! keylessly — but the paper's baselines need ground-truth join paths, so the
//! database can carry them.

use crate::error::{RelationalError, Result};
use crate::table::Table;

/// A declared key-foreign-key relationship, used by oracle baselines only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced column (a key of `to_table`).
    pub to_column: String,
}

impl ForeignKey {
    /// Convenience constructor.
    pub fn new(
        from_table: impl Into<String>,
        from_column: impl Into<String>,
        to_table: impl Into<String>,
        to_column: impl Into<String>,
    ) -> Self {
        Self {
            from_table: from_table.into(),
            from_column: from_column.into(),
            to_table: to_table.into(),
            to_column: to_column.into(),
        }
    }
}

/// A collection of named tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    foreign_keys: Vec<ForeignKey>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table; names must be unique.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        if self.tables.iter().any(|t| t.name() == table.name()) {
            return Err(RelationalError::DuplicateTable {
                table: table.name().to_owned(),
            });
        }
        self.tables.push(table);
        Ok(())
    }

    /// Declares a ground-truth KFK relationship (oracle metadata).
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Drops every declared foreign key — the "schema-free" evaluation
    /// setting, where only content-based join discovery can relate tables.
    pub fn clear_foreign_keys(&mut self) {
        self.foreign_keys.clear();
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| RelationalError::UnknownTable {
                table: name.to_owned(),
            })
    }

    /// Mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.name() == name)
            .ok_or_else(|| RelationalError::UnknownTable {
                table: name.to_owned(),
            })
    }

    /// Removes a table (used by fine-tuning table dropping) and any foreign
    /// keys touching it.
    pub fn remove_table(&mut self, name: &str) -> Result<Table> {
        let idx = self
            .tables
            .iter()
            .position(|t| t.name() == name)
            .ok_or_else(|| RelationalError::UnknownTable {
                table: name.to_owned(),
            })?;
        self.foreign_keys
            .retain(|fk| fk.from_table != name && fk.to_table != name);
        Ok(self.tables.remove(idx))
    }

    /// All tables in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }

    /// Total attributes (columns) across all tables — the `M` in the paper's
    /// complexity analysis and the denominator of `θ_range`.
    pub fn total_attributes(&self) -> usize {
        self.tables.iter().map(Table::column_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        let mut a = Table::new("a", vec!["id", "x"]);
        a.push_row(vec![Value::Int(1), Value::Int(10)]).unwrap();
        let mut b = Table::new("b", vec!["id", "y"]);
        b.push_row(vec![Value::Int(1), Value::Int(20)]).unwrap();
        b.push_row(vec![Value::Int(2), Value::Int(30)]).unwrap();
        db.add_table(a).unwrap();
        db.add_table(b).unwrap();
        db.add_foreign_key(ForeignKey::new("b", "id", "a", "id"));
        db
    }

    #[test]
    fn add_and_lookup() {
        let db = db();
        assert_eq!(db.table_count(), 2);
        assert!(db.table("a").is_ok());
        assert!(db.table("z").is_err());
    }

    #[test]
    fn duplicate_rejected() {
        let mut d = db();
        let err = d.add_table(Table::new("a", vec!["q"])).unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateTable { .. }));
    }

    #[test]
    fn totals() {
        let db = db();
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.total_attributes(), 4);
    }

    #[test]
    fn remove_table_drops_fks() {
        let mut d = db();
        assert_eq!(d.foreign_keys().len(), 1);
        d.remove_table("a").unwrap();
        assert_eq!(d.table_count(), 1);
        assert!(d.foreign_keys().is_empty());
        assert!(d.remove_table("a").is_err());
    }
}
