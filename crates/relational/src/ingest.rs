//! Ingestion policy and quarantine reporting for untrusted tabular input.
//!
//! Leva's north star is serving traffic over data nobody hand-cleaned, so
//! the CSV layer supports two contracts:
//!
//! * **Strict** ([`IngestMode::Strict`], the default): structurally corrupt
//!   input — ragged rows, bare quotes, unterminated quotes, invalid UTF-8 —
//!   is rejected with a typed [`crate::RelationalError`] carrying the line,
//!   column, and reason. This is the right mode for pipelines that should
//!   fail fast on malformed upstream exports.
//! * **Lenient** ([`IngestMode::Lenient`]): every input parses. Structural
//!   damage is repaired (ragged rows padded/truncated, stray quotes kept as
//!   literal characters, invalid UTF-8 replaced) and each repair is
//!   *quarantined* into an [`IngestReport`] so callers can audit what the
//!   reader had to invent.
//!
//! In **both** modes the report also carries a census of value-level dirt
//! that is deliberately *not* an error: non-finite numerics (`inf`, `NaN`)
//! and non-canonical numerics (`007`, `+7`, `2.50`) are kept as text so the
//! downstream voting mechanism can discover them as sentinels (see the
//! `csv` module docs), and common missing-data sentinels are tallied.

use std::collections::BTreeMap;
use std::fmt;

/// How the CSV reader treats structurally corrupt input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Reject structural corruption with a typed error (default).
    #[default]
    Strict,
    /// Repair structural corruption and quarantine it into the report.
    Lenient,
}

/// Options controlling CSV ingestion.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Strict or lenient handling of structural corruption.
    pub mode: IngestMode,
    /// Cap on individually recorded [`CellIssue`]s (counters are exact
    /// regardless; the cap only bounds report memory on pathological input).
    pub max_recorded_issues: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            mode: IngestMode::Strict,
            max_recorded_issues: 64,
        }
    }
}

impl IngestOptions {
    /// Strict options (the default).
    pub fn strict() -> Self {
        Self::default()
    }

    /// Lenient options: never fail, quarantine instead.
    pub fn lenient() -> Self {
        Self {
            mode: IngestMode::Lenient,
            ..Self::default()
        }
    }
}

/// Why a cell (or row) was quarantined or censused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueReason {
    /// A row had fewer fields than the header; missing cells became null.
    RaggedRowPadded,
    /// A row had more fields than the header; extra cells were dropped.
    RaggedRowTruncated,
    /// A numeric-looking cell parsed to `inf`/`-inf`/`NaN` and was kept as
    /// text so voting can treat it as a sentinel.
    NonFiniteNumeric,
    /// A numeric-looking cell whose canonical rendering does not round-trip
    /// the original text (`007`, `+7`, `2.50`) and was kept as text to
    /// preserve join-key identity.
    NonCanonicalNumeric,
    /// A `"` appeared inside an unquoted field and was kept as a literal.
    BareQuote,
    /// The input ended inside a quoted field; the field was closed as-is.
    UnterminatedQuote,
    /// The input was not valid UTF-8; invalid bytes were replaced.
    InvalidUtf8,
}

impl fmt::Display for IssueReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::RaggedRowPadded => "ragged row padded with nulls",
            Self::RaggedRowTruncated => "ragged row truncated",
            Self::NonFiniteNumeric => "non-finite numeric kept as text",
            Self::NonCanonicalNumeric => "non-canonical numeric kept as text",
            Self::BareQuote => "quote inside unquoted field kept as literal",
            Self::UnterminatedQuote => "unterminated quoted field closed at end of input",
            Self::InvalidUtf8 => "invalid UTF-8 replaced",
        };
        f.write_str(s)
    }
}

/// One quarantined cell: where it was, what it held, and why it was flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellIssue {
    /// 1-based source line of the record.
    pub line: usize,
    /// 0-based column index within the record.
    pub column: usize,
    /// The offending raw text (trimmed; empty for row-level issues).
    pub value: String,
    /// Why the cell was flagged.
    pub reason: IssueReason,
}

impl fmt::Display for CellIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {} ({:?})",
            self.line, self.column, self.reason, self.value
        )
    }
}

/// What lenient ingestion had to repair, plus the value-level dirt census
/// both modes collect. Surfaced alongside `StageTimings` by the pipeline
/// when a model is fitted straight from CSV sources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Source table name.
    pub table: String,
    /// Rows successfully ingested (header excluded).
    pub rows_ingested: usize,
    /// Rows whose arity had to be repaired (lenient mode only).
    pub rows_ragged: usize,
    /// Cells that parsed to a non-finite numeric and were kept as text.
    pub cells_non_finite: usize,
    /// Cells whose numeric parse did not round-trip and were kept as text.
    pub cells_non_canonical: usize,
    /// Structural quote repairs (bare or unterminated quotes).
    pub quote_repairs: usize,
    /// Census of common textual missing-data sentinels (lowercased).
    pub sentinel_census: BTreeMap<String, usize>,
    /// Individually recorded issues, capped at
    /// [`IngestOptions::max_recorded_issues`].
    pub issues: Vec<CellIssue>,
    /// Exact number of issues observed (may exceed `issues.len()`).
    pub issues_total: usize,
}

impl IngestReport {
    /// An empty report for a named table.
    pub fn new(table: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            ..Self::default()
        }
    }

    /// True when nothing had to be repaired or censused. Sentinel tallies do
    /// not count: they are informational (the voting mechanism handles
    /// sentinels), not defects the reader introduced.
    pub fn is_clean(&self) -> bool {
        self.issues_total == 0
    }

    /// Records an issue, keeping the exact total while capping the
    /// individually stored entries.
    pub(crate) fn record(&mut self, issue: CellIssue, cap: usize) {
        self.issues_total += 1;
        if self.issues.len() < cap {
            self.issues.push(issue);
        }
    }

    /// One-line human summary, for logs.
    pub fn summary(&self) -> String {
        format!(
            "table '{}': {} rows, {} ragged, {} non-finite, {} non-canonical, \
             {} quote repairs, {} sentinel hits, {} issues total",
            self.table,
            self.rows_ingested,
            self.rows_ragged,
            self.cells_non_finite,
            self.cells_non_canonical,
            self.quote_repairs,
            self.sentinel_census.values().sum::<usize>(),
            self.issues_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_strict() {
        assert_eq!(IngestOptions::default().mode, IngestMode::Strict);
        assert_eq!(IngestOptions::lenient().mode, IngestMode::Lenient);
    }

    #[test]
    fn record_caps_entries_but_counts_all() {
        let mut r = IngestReport::new("t");
        for i in 0..10 {
            r.record(
                CellIssue {
                    line: i,
                    column: 0,
                    value: String::new(),
                    reason: IssueReason::RaggedRowPadded,
                },
                3,
            );
        }
        assert_eq!(r.issues.len(), 3);
        assert_eq!(r.issues_total, 10);
        assert!(!r.is_clean());
    }

    #[test]
    fn summary_mentions_table() {
        let r = IngestReport::new("orders");
        assert!(r.summary().contains("orders"));
        assert!(r.is_clean());
    }
}
