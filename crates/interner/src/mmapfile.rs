//! Read-only memory-mapped files, dependency-free.
//!
//! Out-of-core artifact serving (DESIGN.md §6.14) needs `mmap` without
//! pulling in a crate for it, so the unix implementation declares the two
//! syscalls it uses directly. The file descriptor comes from `std::fs::File`
//! (std already owns `open`/`fstat`); only the mapping itself is FFI. On
//! non-unix targets the same API is backed by an ordinary heap read, so
//! callers never need a `cfg` — they just lose the zero-copy property.
//!
//! A [`MmapFile`] derefs to `&[u8]` and is `Send + Sync`: the mapping is
//! `PROT_READ`/`MAP_PRIVATE` and never mutated. Callers that lend out
//! sub-slices share the mapping with `Arc<MmapFile>` and keep numeric
//! offsets, never self-referential borrows.
//!
//! Safety note inherited by every user: mapped bytes come from a file that
//! another process could truncate underneath us, which would turn reads into
//! `SIGBUS`. That is the standard, documented mmap contract (every mmap
//! consumer in the ecosystem shares it); Leva additionally CRC-checks every
//! chunk before trusting its contents, so torn *writes* are detected even
//! though torn *truncations* remain the operator's responsibility.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A whole file, mapped read-only (unix) or read into the heap (elsewhere).
#[derive(Debug)]
pub struct MmapFile {
    inner: Backing,
}

#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped {
        /// Page-aligned base address returned by `mmap`, null only for the
        /// empty-file mapping (which we never dereference: `len == 0`).
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is immutable (PROT_READ) for the life of the value and
// unmapped exactly once in Drop; sharing &MmapFile across threads is sharing
// &[u8].
#[cfg(unix)]
unsafe impl Send for MmapFile {}
#[cfg(unix)]
unsafe impl Sync for MmapFile {}

#[cfg(unix)]
mod ffi {
    use core::ffi::c_void;
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl MmapFile {
    /// Maps `path` read-only. Empty files map to an empty slice.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        Self::from_file(&file, len)
    }

    #[cfg(unix)]
    fn from_file(file: &File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Self {
                inner: Backing::Heap(Vec::new()),
            });
        }
        // SAFETY: fd is valid for the duration of the call; a MAP_PRIVATE
        // read-only mapping of a regular file has no other preconditions.
        let ptr = unsafe {
            ffi::mmap(
                core::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == ffi::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            inner: Backing::Mapped { ptr, len },
        })
    }

    #[cfg(not(unix))]
    fn from_file(file: &File, len: usize) -> io::Result<Self> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Self {
            inner: Backing::Heap(buf),
        })
    }

    /// True when the bytes live in a kernel mapping rather than the heap —
    /// i.e. when serving from this file is actually zero-copy.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: ptr/len came from a successful mmap that lives
                // until Drop; the mapping is read-only and page-backed.
                unsafe { core::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Backing::Heap(v) => v,
        }
    }
}

impl Deref for MmapFile {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly one munmap per successful mmap; failure here
            // is unreportable and harmless (the mapping leaks).
            unsafe {
                ffi::munmap(ptr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leva-mmapfile-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        std::fs::write(&path, b"hello mapping").unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert_eq!(&map[..], b"hello mapping");
        assert_eq!(map.len(), 13);
        #[cfg(unix)]
        assert!(map.is_mapped());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(MmapFile::open(Path::new("/nonexistent/leva-nope")).is_err());
    }

    #[test]
    fn mapping_base_is_page_aligned() {
        let path = temp_path("aligned");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let map = MmapFile::open(&path).unwrap();
        // 8-byte payload alignment in the file carries over to memory only
        // because the mapping base is at least 8-aligned; pages are 4 KiB+.
        assert_eq!(map.as_ptr() as usize % 8, 0);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
