//! Arena-backed string interner shared by every pipeline layer.
//!
//! Leva is fundamentally a token-identity system: every value the textifier
//! emits becomes a graph node, a walk-corpus symbol, an SGNS vocab entry,
//! and an embedding-store key. Before this crate each layer re-owned and
//! re-hashed the same strings at its boundary; now the tokenizer interns
//! each distinct token exactly once and every downstream stage speaks the
//! copy-type [`TokenId`], materializing strings only at serialization,
//! JSON, and deployment boundaries.
//!
//! IDs are dense (`0..len()`) and assigned in first-intern order, so a
//! `Vec` indexed by `TokenId` is a perfect hash map over the vocabulary.
//! Interning is single-threaded by construction (the tokenizer runs one
//! sequential merge pass in database order), which makes ID assignment
//! deterministic and independent of worker-thread count.

pub mod codec;
pub mod mmapfile;

pub use mmapfile::MmapFile;

use codec::{ByteReader, ByteWriter, DecodeError};
use std::fmt;

/// Dense identity of an interned token. Copy, 4 bytes, contiguous from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(u32);

impl TokenId {
    /// Builds a `TokenId` from a dense index (inverse of [`TokenId::index`]).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TokenId(u32::try_from(index).expect("token index fits in u32"))
    }

    /// The dense index of this token: valid for direct `Vec` indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw u32 payload.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

const EMPTY_SLOT: u32 = u32::MAX;

/// Arena-backed interner: one shared `String` arena plus a span table and
/// an open-addressing index, so each distinct token is stored exactly once
/// and lookups never allocate.
#[derive(Clone, Default)]
pub struct TokenInterner {
    /// Every interned string, back to back.
    arena: String,
    /// `(offset, len)` into `arena`, indexed by `TokenId`.
    spans: Vec<(u32, u32)>,
    /// Open-addressing table of token indices (`EMPTY_SLOT` = vacant).
    /// Length is always a power of two.
    table: Vec<u32>,
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl TokenInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty interner with room for roughly `tokens` distinct tokens of
    /// `bytes_hint` total text before the first reallocation.
    pub fn with_capacity(tokens: usize, bytes_hint: usize) -> Self {
        let mut this = TokenInterner {
            arena: String::with_capacity(bytes_hint),
            spans: Vec::with_capacity(tokens),
            table: Vec::new(),
        };
        this.rebuild_table((tokens * 2).next_power_of_two().max(16));
        this
    }

    /// Interns `token`, returning its stable dense id. Repeated calls with
    /// the same string return the same id.
    pub fn intern(&mut self, token: &str) -> TokenId {
        if self.table.is_empty() {
            self.rebuild_table(16);
        } else if (self.spans.len() + 1) * 4 > self.table.len() * 3 {
            // Keep load factor under 3/4.
            self.rebuild_table(self.table.len() * 2);
        }
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(token.as_bytes()) as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY_SLOT {
                let id = self.push_span(token);
                self.table[slot] = id.raw();
                return id;
            }
            if self.span_str(entry as usize) == token {
                return TokenId(entry);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Looks up an already-interned token without inserting.
    pub fn lookup(&self, token: &str) -> Option<TokenId> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(token.as_bytes()) as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY_SLOT {
                return None;
            }
            if self.span_str(entry as usize) == token {
                return Some(TokenId(entry));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The string for `id`. Panics if `id` was not produced by this
    /// interner (dense ids make that a hard logic error, not data).
    #[inline]
    pub fn resolve(&self, id: TokenId) -> &str {
        self.span_str(id.index())
    }

    /// Number of distinct interned tokens; ids are exactly `0..len()`.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates `(TokenId, &str)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        (0..self.spans.len()).map(|i| (TokenId::from_index(i), self.span_str(i)))
    }

    /// Bytes of string payload held in the arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Estimated heap footprint: arena + span table + hash index.
    pub fn estimated_bytes(&self) -> usize {
        self.arena.capacity()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn span_str(&self, index: usize) -> &str {
        let (off, len) = self.spans[index];
        &self.arena[off as usize..off as usize + len as usize]
    }

    fn push_span(&mut self, token: &str) -> TokenId {
        let off = u32::try_from(self.arena.len()).expect("arena under 4 GiB");
        let len = u32::try_from(token.len()).expect("token under 4 GiB");
        self.arena.push_str(token);
        let id = TokenId::from_index(self.spans.len());
        self.spans.push((off, len));
        id
    }

    /// Serializes the symbol table: token count, then each token's bytes in
    /// dense-id order. Decoding with [`TokenInterner::decode`] reproduces
    /// identical id assignment, so `TokenId`s persisted next to the table
    /// stay valid.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(u32::try_from(self.spans.len()).expect("vocabulary fits in u32"));
        for i in 0..self.spans.len() {
            w.put_str(self.span_str(i));
        }
    }

    /// Decodes a symbol table produced by [`TokenInterner::encode_into`]
    /// from untrusted bytes. Every token must be distinct (dense ids would
    /// silently shift otherwise) — duplicates are a typed error.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<TokenInterner, DecodeError> {
        // Each token costs at least its 4-byte length prefix.
        let count = r.take_count(4)?;
        let mut interner = TokenInterner::with_capacity(count, r.remaining().min(1 << 20));
        for i in 0..count {
            let token = r.take_str()?;
            let id = interner.intern(token);
            if id.index() != i {
                return Err(DecodeError::Invalid("duplicate token in symbol table"));
            }
        }
        Ok(interner)
    }

    fn rebuild_table(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        let mut table = vec![EMPTY_SLOT; new_len];
        let mask = new_len - 1;
        for i in 0..self.spans.len() {
            let mut slot = (fnv1a(self.span_str(i).as_bytes()) as usize) & mask;
            while table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            table[slot] = i as u32;
        }
        self.table = table;
    }
}

impl fmt::Debug for TokenInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TokenInterner")
            .field("len", &self.len())
            .field("arena_bytes", &self.arena_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let mut it = TokenInterner::new();
        let tokens = ["alpha", "beta", "", "Émile", "row::base::0", "alpha "];
        let ids: Vec<TokenId> = tokens.iter().map(|t| it.intern(t)).collect();
        for (tok, id) in tokens.iter().zip(&ids) {
            assert_eq!(it.resolve(*id), *tok);
            assert_eq!(it.lookup(tok), Some(*id));
        }
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = TokenInterner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        let a2 = it.intern("a");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(a, a2);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn survives_growth_past_initial_table() {
        let mut it = TokenInterner::new();
        let ids: Vec<TokenId> = (0..10_000).map(|i| it.intern(&format!("tok{i}"))).collect();
        assert_eq!(it.len(), 10_000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(it.resolve(*id), format!("tok{i}"));
        }
        // Re-interning after growth still returns the original ids.
        assert_eq!(it.intern("tok0"), ids[0]);
        assert_eq!(it.intern("tok9999"), ids[9999]);
    }

    #[test]
    fn lookup_misses_without_inserting() {
        let mut it = TokenInterner::new();
        it.intern("present");
        assert_eq!(it.lookup("absent"), None);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = TokenInterner::new();
        for t in ["x", "y", "z"] {
            it.intern(t);
        }
        let collected: Vec<(usize, &str)> = it.iter().map(|(id, s)| (id.index(), s)).collect();
        assert_eq!(collected, vec![(0, "x"), (1, "y"), (2, "z")]);
    }

    #[test]
    fn byte_accounting_tracks_arena() {
        let mut it = TokenInterner::new();
        it.intern("abcd");
        it.intern("ef");
        assert_eq!(it.arena_bytes(), 6);
        assert!(it.estimated_bytes() >= 6);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = TokenInterner::new();
        let mut b = TokenInterner::with_capacity(100, 1000);
        for t in ["one", "two", "three", "one"] {
            assert_eq!(a.intern(t), b.intern(t));
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn codec_round_trip_preserves_ids() {
        let mut it = TokenInterner::new();
        for t in ["alpha", "", "row::base::0", "Émile", "日本"] {
            it.intern(t);
        }
        let mut w = ByteWriter::new();
        it.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = TokenInterner::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), it.len());
        for (id, s) in it.iter() {
            assert_eq!(back.resolve(id), s);
            assert_eq!(back.lookup(s), Some(id));
        }
    }

    #[test]
    fn codec_rejects_duplicates_and_truncation() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_str("same");
        w.put_str("same");
        let bytes = w.into_bytes();
        assert_eq!(
            TokenInterner::decode(&mut ByteReader::new(&bytes)).unwrap_err(),
            DecodeError::Invalid("duplicate token in symbol table")
        );
        for cut in 0..bytes.len() {
            let err = TokenInterner::decode(&mut ByteReader::new(&bytes[..cut]));
            if cut < bytes.len() - 4 {
                assert!(err.is_err(), "cut at {cut} decoded");
            }
        }
    }

    #[test]
    fn codec_rejects_inflated_count() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // claims 4 billion tokens in a tiny buffer
        let bytes = w.into_bytes();
        assert_eq!(
            TokenInterner::decode(&mut ByteReader::new(&bytes)).unwrap_err(),
            DecodeError::LengthOverflow
        );
    }

    #[test]
    fn clone_is_independent() {
        let mut a = TokenInterner::new();
        a.intern("shared");
        let mut b = a.clone();
        b.intern("only-in-b");
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.resolve(TokenId::from_index(0)), "shared");
    }
}
