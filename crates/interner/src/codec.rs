//! Bounded little-endian binary codec shared by every serialization layer.
//!
//! Model artifacts are decoded from *untrusted* bytes (a file on disk is no
//! more trustworthy than a CSV upload), so the reader enforces the same
//! discipline the ingestion layer does for CSV: every declared length is
//! validated against the remaining buffer **before** any allocation, all
//! length arithmetic is checked, and failures surface as a typed
//! [`DecodeError`] — never a panic, never an allocation larger than the
//! input itself.
//!
//! The writer is the trivial dual: append-only little-endian primitives
//! with `u32` length prefixes for variable-size payloads.

use std::fmt;

/// Errors produced while decoding an untrusted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the declared content.
    Truncated,
    /// A declared length or count overflows, or exceeds the buffer.
    LengthOverflow,
    /// The bytes decoded but violate a structural invariant.
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "buffer truncated"),
            Self::LengthOverflow => write!(f, "declared length exceeds the buffer"),
            Self::Invalid(msg) => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finishes and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern (bitwise exact,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("payload under 4 GiB"));
        self.put_raw(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Aligned-writer mode: pads with zero bytes until the write position is
    /// a multiple of `align`. Alignment is relative to the start of this
    /// buffer, so a payload framed at an `align`-aligned file offset keeps
    /// every `pad_to(align)`-preceded field aligned in the mapped file too.
    pub fn pad_to(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        while !self.buf.len().is_multiple_of(align) {
            self.buf.push(0);
        }
    }

    /// Appends a slice of `u32`s as consecutive little-endian words.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a slice of `u64`s as consecutive little-endian words.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a slice of `f64`s as consecutive little-endian bit patterns.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Bounded little-endian reader over an untrusted byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    consumed: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, consumed: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Bytes consumed since [`ByteReader::new`] — the reader-side position
    /// that mirrors [`ByteWriter::len`], used to honor `pad_to` alignment.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// True when the buffer is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }

    /// Takes `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        self.consumed += n;
        Ok(head)
    }

    /// Reader dual of [`ByteWriter::pad_to`]: consumes the zero padding that
    /// realigns the position to a multiple of `align`. Non-zero padding
    /// bytes are a structural error — nothing may hide in the gaps.
    pub fn pad_to(&mut self, align: usize) -> Result<(), DecodeError> {
        debug_assert!(align.is_power_of_two());
        let rem = self.consumed % align;
        if rem == 0 {
            return Ok(());
        }
        let pad = self.take_raw(align - rem)?;
        if pad.iter().any(|&b| b != 0) {
            return Err(DecodeError::Invalid("non-zero alignment padding"));
        }
        Ok(())
    }

    /// Takes one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take_raw(1)?[0])
    }

    /// Takes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take_raw(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take_raw(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Takes a `u64` that must fit in `usize`.
    pub fn take_usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.take_u64()?).map_err(|_| DecodeError::LengthOverflow)
    }

    /// Takes an `f64` from its little-endian bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.take_raw(8)?;
        Ok(f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])))
    }

    /// Takes a `u32`-length-prefixed byte payload, validating the declared
    /// length against the remaining buffer before slicing.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_u32()? as usize;
        if len > self.buf.len() {
            return Err(DecodeError::LengthOverflow);
        }
        self.take_raw(len)
    }

    /// Takes a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| DecodeError::Invalid("not UTF-8"))
    }

    /// Reads an element count declared as `u32` and validates that `count`
    /// elements of at least `min_elem_bytes` each can still fit in the
    /// remaining buffer — the gate every decoder must pass **before**
    /// allocating. Returns the count, safe to use with `Vec::with_capacity`.
    pub fn take_count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let count = self.take_u32()? as usize;
        let need = count
            .checked_mul(min_elem_bytes.max(1))
            .ok_or(DecodeError::LengthOverflow)?;
        if need > self.buf.len() {
            return Err(DecodeError::LengthOverflow);
        }
        Ok(count)
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `bytes`.
///
/// Table-free bitwise implementation: artifact chunks are hashed once per
/// save/load, so simplicity beats a lookup table here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC-32 hasher over the same polynomial as [`crc32`]:
/// feeding a byte stream in any chunking produces exactly
/// `crc32(concatenation)`. Used by streaming writers (artifact save,
/// serve-side checksum stamping) that never hold the full byte vector.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Self { state: 0xffff_ffff }
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
        self.state = crc;
    }

    /// Returns the digest of everything fed so far. The hasher stays
    /// usable; further `update` calls continue the same stream.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_bytes(b"");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_str().unwrap(), "héllo");
        assert_eq!(r.take_bytes().unwrap(), b"");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_typed() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.take_u32().unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn inflated_length_rejected_before_allocation() {
        // Declares a 4 GiB payload in an 8-byte buffer.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_bytes().unwrap_err(), DecodeError::LengthOverflow);
    }

    #[test]
    fn count_gate_checks_remaining_bytes() {
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000); // a million elements...
        w.put_u32(0); // ...but only 4 bytes follow
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_count(4).unwrap_err(), DecodeError::LengthOverflow);
        // A truthful count passes.
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_count(8).unwrap(), 2);
    }

    #[test]
    fn count_gate_survives_multiplication_overflow() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.take_count(usize::MAX).unwrap_err(),
            DecodeError::LengthOverflow
        );
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_str().unwrap_err(), DecodeError::Invalid(_)));
    }

    #[test]
    fn alignment_round_trips() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.pad_to(8);
        w.put_f64_slice(&[1.5, -2.5]);
        w.put_u32_slice(&[7, 8, 9]);
        w.pad_to(8);
        w.put_u64_slice(&[42]);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 8 + 16 + 12 + 4 + 8);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 1);
        r.pad_to(8).unwrap();
        assert_eq!(r.consumed(), 8);
        assert_eq!(r.take_f64().unwrap(), 1.5);
        assert_eq!(r.take_f64().unwrap(), -2.5);
        for expect in [7u32, 8, 9] {
            assert_eq!(r.take_u32().unwrap(), expect);
        }
        r.pad_to(8).unwrap();
        assert_eq!(r.take_u64().unwrap(), 42);
        assert!(r.is_exhausted());
        // Already-aligned positions consume nothing.
        let mut r = ByteReader::new(&bytes);
        r.pad_to(1).unwrap();
        assert_eq!(r.consumed(), 0);
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.pad_to(8);
        let mut bytes = w.into_bytes();
        bytes[3] = 0xaa;
        let mut r = ByteReader::new(&bytes);
        r.take_u8().unwrap();
        assert!(matches!(r.pad_to(8).unwrap_err(), DecodeError::Invalid(_)));
    }

    #[test]
    fn incremental_crc_matches_one_shot_under_any_chunking() {
        let data: Vec<u8> = (0u16..500).map(|i| (i % 251) as u8).collect();
        let want = crc32(&data);
        for chunk in [1usize, 3, 7, 64, 500] {
            let mut h = Crc32::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finish(), want, "chunk size {chunk}");
        }
        assert_eq!(Crc32::new().finish(), 0);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xcbf43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
